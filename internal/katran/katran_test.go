package katran

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func quickCheck(f any) error {
	return quick.Check(f, &quick.Config{MaxCount: 100})
}

func TestFlowCacheBasics(t *testing.T) {
	c := NewFlowCache(2)
	c.Put(1, "a")
	c.Put(2, "b")
	if got, ok := c.Get(1); !ok || got != "a" {
		t.Fatalf("get(1) = %q %v", got, ok)
	}
	// Access order: 1 is now MRU; adding 3 evicts 2.
	c.Put(3, "c")
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 should have survived (recently used)")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestFlowCacheUpdateMovesToFront(t *testing.T) {
	c := NewFlowCache(2)
	c.Put(1, "a")
	c.Put(2, "b")
	c.Put(1, "a2") // update, not insert
	if got, _ := c.Get(1); got != "a2" {
		t.Fatalf("got %q", got)
	}
	c.Put(3, "c")
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted after 1 was refreshed")
	}
}

func TestFlowCacheDelete(t *testing.T) {
	c := NewFlowCache(4)
	c.Put(1, "a")
	c.Delete(1)
	c.Delete(99) // absent: no-op
	if _, ok := c.Get(1); ok || c.Len() != 0 {
		t.Fatal("delete failed")
	}
}

func newLB(t *testing.T, cfg Config, backends ...string) *LB {
	t.Helper()
	lb := New("test-lb", cfg, nil)
	for _, b := range backends {
		lb.AddBackend(Backend{Name: b, Addr: b + ":443"}, true)
	}
	t.Cleanup(lb.Close)
	return lb
}

func TestSteerNoBackends(t *testing.T) {
	lb := newLB(t, Config{})
	if _, err := lb.Steer(1); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("err = %v", err)
	}
}

func TestSteerConsistent(t *testing.T) {
	lb := newLB(t, Config{}, "p1", "p2", "p3", "p4")
	for flow := uint64(0); flow < 100; flow++ {
		a, err := lb.Steer(flow)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := lb.Steer(flow)
		if a.Name != b.Name {
			t.Fatalf("flow %d flapped %s -> %s", flow, a.Name, b.Name)
		}
	}
}

func TestSteerSpreadsLoad(t *testing.T) {
	lb := newLB(t, Config{}, "p1", "p2", "p3", "p4")
	counts := map[string]int{}
	for flow := uint64(0); flow < 4000; flow++ {
		b, err := lb.Steer(flow * 0x9e3779b97f4a7c15)
		if err != nil {
			t.Fatal(err)
		}
		counts[b.Name]++
	}
	for name, n := range counts {
		if n < 500 || n > 1500 {
			t.Fatalf("backend %s got %d of 4000 flows", name, n)
		}
	}
}

func TestUnhealthyBackendRemovedFromRing(t *testing.T) {
	lb := newLB(t, Config{}, "p1", "p2", "p3")
	lb.SetHealth("p2", false)
	if got := lb.HealthyBackends(); len(got) != 2 {
		t.Fatalf("healthy = %v", got)
	}
	for flow := uint64(0); flow < 500; flow++ {
		b, err := lb.Steer(flow)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name == "p2" {
			t.Fatal("steered to unhealthy backend")
		}
	}
}

// TestLRUCacheAbsorbsHealthFlap is the §5.1 scenario: a momentary health
// flap must not move established flows when the flow cache is enabled.
func TestLRUCacheAbsorbsHealthFlap(t *testing.T) {
	lb := newLB(t, Config{FlowCacheSize: 4096}, "p1", "p2", "p3", "p4")
	// Establish flows.
	before := map[uint64]string{}
	for flow := uint64(0); flow < 1000; flow++ {
		b, err := lb.Steer(flow)
		if err != nil {
			t.Fatal(err)
		}
		before[flow] = b.Name
	}
	// Flap: p3 momentarily unhealthy, then back.
	lb.SetHealth("p3", false)
	lb.SetHealth("p3", true)
	moved := 0
	for flow := uint64(0); flow < 1000; flow++ {
		b, err := lb.Steer(flow)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name != before[flow] {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d flows moved across a momentary flap despite the LRU cache", moved)
	}
}

// TestWithoutCacheFlapMovesFlows is the ablation baseline: without the
// cache, flows owned by the flapped backend get re-picked mid-flap.
func TestWithoutCacheFlapMovesFlows(t *testing.T) {
	lb := newLB(t, Config{}, "p1", "p2", "p3", "p4")
	owned := []uint64{}
	for flow := uint64(0); flow < 1000; flow++ {
		b, _ := lb.Steer(flow)
		if b.Name == "p3" {
			owned = append(owned, flow)
		}
	}
	if len(owned) == 0 {
		t.Fatal("p3 owns no flows?")
	}
	lb.SetHealth("p3", false)
	moved := 0
	for _, flow := range owned {
		b, _ := lb.Steer(flow)
		if b.Name != "p3" {
			moved++
		}
	}
	if moved != len(owned) {
		t.Fatalf("only %d/%d of the dead backend's flows moved", moved, len(owned))
	}
}

// TestCachedFlowFailsOverWhenBackendDies: the cache must not pin flows to
// a dead backend.
func TestCachedFlowFailsOverWhenBackendDies(t *testing.T) {
	lb := newLB(t, Config{FlowCacheSize: 128}, "p1", "p2")
	var victimFlow uint64
	var victim string
	for flow := uint64(0); flow < 100; flow++ {
		b, _ := lb.Steer(flow)
		victimFlow, victim = flow, b.Name
		break
	}
	lb.SetHealth(victim, false)
	b, err := lb.Steer(victimFlow)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name == victim {
		t.Fatal("cache pinned a flow to a dead backend")
	}
}

// TestECMPConsistency: multiple Katran instances with the same backend
// view steer every flow identically (the property ECMP relies on, §2.1).
func TestECMPConsistency(t *testing.T) {
	mk := func() *LB { return newLB(t, Config{}, "p1", "p2", "p3", "p4", "p5") }
	a, b, c := mk(), mk(), mk()
	for flow := uint64(0); flow < 2000; flow++ {
		x, _ := a.Steer(flow)
		y, _ := b.Steer(flow)
		z, _ := c.Steer(flow)
		if x.Name != y.Name || y.Name != z.Name {
			t.Fatalf("flow %d steered inconsistently: %s %s %s", flow, x.Name, y.Name, z.Name)
		}
	}
}

// healthServer answers the HC protocol; answer is swappable at runtime.
type healthServer struct {
	ln     net.Listener
	answer func() string
}

func startHealthServer(t *testing.T, answer func() string) *healthServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &healthServer{ln: ln, answer: answer}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				if line, err := br.ReadString('\n'); err != nil || line != "HC\n" {
					return
				}
				fmt.Fprintf(conn, "%s\n", hs.answer())
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return hs
}

func TestProbeHCAgainstRealServer(t *testing.T) {
	healthy := true
	hs := startHealthServer(t, func() string {
		if healthy {
			return "OK"
		}
		return "DRAIN"
	})
	addr := hs.ln.Addr().String()
	if err := ProbeHC(addr, time.Second); err != nil {
		t.Fatalf("healthy probe failed: %v", err)
	}
	healthy = false
	if err := ProbeHC(addr, time.Second); err == nil {
		t.Fatal("DRAIN answer should probe unhealthy")
	}
	hs.ln.Close()
	if err := ProbeHC(addr, 200*time.Millisecond); err == nil {
		t.Fatal("dead listener should probe unhealthy")
	}
}

func TestHealthCheckLoopEvictsAndReadmits(t *testing.T) {
	state := "OK"
	hs := startHealthServer(t, func() string { return state })
	lb := New("lb", Config{UnhealthyAfter: 2, HealthyAfter: 2}, nil)
	defer lb.Close()
	lb.AddBackend(Backend{Name: "p1", Addr: "ignored", HealthAddr: hs.ln.Addr().String()}, false)

	lb.ProbeOnce()
	if len(lb.HealthyBackends()) != 0 {
		t.Fatal("admitted after 1 probe with HealthyAfter=2")
	}
	lb.ProbeOnce()
	if len(lb.HealthyBackends()) != 1 {
		t.Fatal("not admitted after 2 good probes")
	}
	state = "DRAIN"
	lb.ProbeOnce()
	if len(lb.HealthyBackends()) != 1 {
		t.Fatal("evicted after only 1 failure with UnhealthyAfter=2")
	}
	lb.ProbeOnce()
	if len(lb.HealthyBackends()) != 0 {
		t.Fatal("not evicted after 2 failures")
	}
	if lb.Metrics().CounterValue("katran.health.down") != 1 {
		t.Fatal("down transition not counted")
	}
}

func TestStartHealthChecksRuns(t *testing.T) {
	hs := startHealthServer(t, func() string { return "OK" })
	lb := New("lb", Config{}, nil)
	lb.AddBackend(Backend{Name: "p1", Addr: "x", HealthAddr: hs.ln.Addr().String()}, false)
	lb.StartHealthChecks(20 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for len(lb.HealthyBackends()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("health loop never admitted the backend")
		}
		time.Sleep(10 * time.Millisecond)
	}
	lb.Close()
}

func BenchmarkSteerCached(b *testing.B) {
	lb := New("bench", Config{FlowCacheSize: 1 << 16}, nil)
	for i := 0; i < 64; i++ {
		lb.AddBackend(Backend{Name: fmt.Sprintf("p%d", i), Addr: "x"}, true)
	}
	lb.Steer(12345)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lb.Steer(12345)
	}
}

func BenchmarkSteerUncached(b *testing.B) {
	lb := New("bench", Config{}, nil)
	for i := 0; i < 64; i++ {
		lb.AddBackend(Backend{Name: fmt.Sprintf("p%d", i), Addr: "x"}, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lb.Steer(uint64(i))
	}
}

// Property: the cache never exceeds capacity and Get always returns what
// the most recent Put stored.
func TestFlowCacheProperty(t *testing.T) {
	const cap = 8
	c := NewFlowCache(cap)
	shadow := map[uint64]string{}
	f := func(ops []uint16) bool {
		for _, op := range ops {
			flow := uint64(op % 32)
			switch {
			case op%3 == 0:
				c.Delete(flow)
				delete(shadow, flow)
			default:
				val := fmt.Sprintf("b%d", op%5)
				c.Put(flow, val)
				shadow[flow] = val
			}
			if c.Len() > cap {
				return false
			}
			if got, ok := c.Get(flow); ok && got != shadow[flow] {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f); err != nil {
		t.Fatal(err)
	}
}
