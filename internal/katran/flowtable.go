package katran

import (
	"sort"
	"sync"
	"sync/atomic"
)

// FlowTable is the million-flow routing memory behind Steer: a compact,
// bounded-memory, O(1)-update hash table pinning flow hashes to backends,
// in the spirit of Concury's stateless-ish connection table and the
// stateful/stateless tradeoff analysis in *LB Scalability* (PAPERS.md).
// Where ShardedFlowCache is the small §5.1 LRU that absorbs *momentary*
// shuffles, the FlowTable is sized for every established flow an instance
// carries, so its design goals are different:
//
//   - Bounded memory per flow: each entry is exactly 16 bytes (flow hash +
//     packed slot/epoch word) in flat, pointer-free arrays allocated once
//     at construction. A million flows cost 16 MiB and zero GC pressure.
//   - O(1) update: entries live in 8-way buckets addressed by a splitmix64
//     of the flow hash; a full bucket evicts its oldest-generation entry
//     in place. No linked lists, no rehashing, no growth.
//   - Generation-tagged entries: every entry records the release epoch it
//     was written under. A takeover that must flip routing for millions of
//     established flows bumps the epoch ONCE (Bump(true) publishes a new
//     view whose validity window excludes all earlier generations) instead
//     of issuing N per-entry writes; stale entries are lazily overwritten
//     by the next packet of their flow, which is O(1) per packet. The
//     chaos tests pin this by asserting EntryWrites() does not move across
//     a bump.
//
// Backend identity is interned: names map to stable uint16 slots in an
// immutable view published through an atomic pointer. Marking a backend
// unhealthy or drained tombstones its slot in a fresh view — again one
// O(1) publication flipping every flow pinned to it — and re-admitting it
// revives the slot, so flows return to their §5.1-consistent home.
//
// All methods are safe for concurrent use: lookups take one shard mutex
// held for a handful of word operations; view publications are lock-free
// for readers.
type FlowTable struct {
	shardMask  uint64
	bucketMask uint64
	shardBits  uint

	view atomic.Pointer[flowTableView]

	// entryWrites counts per-entry mutations (insert, in-place update,
	// delete, eviction). Epoch bumps and backend-set changes must never
	// move it — that is the O(1)-flip property the chaos suite asserts.
	entryWrites atomic.Uint64
	epochBumps  atomic.Uint64

	mu     sync.Mutex // serializes view publications (control plane)
	shards []flowTableShard
}

// flowTableEntry is one pinned flow: 16 bytes, no pointers.
type flowTableEntry struct {
	key  uint64 // flow hash
	meta uint64 // bit 63: occupied; bits 47..32: backend slot; bits 31..0: epoch
}

const (
	ftOccupied  = uint64(1) << 63
	ftSlotShift = 32
	ftSlotMask  = uint64(0xffff) << ftSlotShift
	ftEpochMask = uint64(0xffffffff)

	// ftBucketWay is the bucket associativity: a full bucket evicts its
	// oldest-generation entry, so the table degrades by forgetting the
	// stalest pins first instead of growing.
	ftBucketWay = 8
)

func ftMeta(slot uint16, epoch uint32) uint64 {
	return ftOccupied | uint64(slot)<<ftSlotShift | uint64(epoch)
}

func (e flowTableEntry) occupied() bool { return e.meta&ftOccupied != 0 }
func (e flowTableEntry) slot() uint16   { return uint16(e.meta >> ftSlotShift) }
func (e flowTableEntry) epoch() uint32  { return uint32(e.meta & ftEpochMask) }

// flowTableShard owns a contiguous run of buckets under one lock, padded
// to 128 bytes (two cache lines, matching flowShard's prefetch-pair
// stride) so adjacent shard locks never false-share.
type flowTableShard struct {
	mu      sync.Mutex
	entries []flowTableEntry // bucketsPerShard × ftBucketWay
	count   int
	_       [128 - 8 - 24 - 8]byte
}

// flowTableView is one immutable generation view. Readers load it
// lock-free; publications swap in a fresh value.
type flowTableView struct {
	// epoch is the current release generation; new entries are tagged
	// with it.
	epoch uint32
	// minEpoch is the oldest generation still routable. Entries tagged
	// below it are dead regardless of their slot — the O(1) mass
	// invalidation a takeover uses to flip millions of flows at once.
	minEpoch uint32
	// names maps slot -> backend name. Slots are stable for the table's
	// lifetime so re-admitted backends revive their pinned flows.
	names []string
	// live marks slots currently routable; a drained backend's slot is
	// tombstoned (false) in one publication.
	live []bool
	// slots maps backend name -> slot.
	slots map[string]uint16
}

// DefaultFlowTableShards is the shard count used when shards <= 0.
const DefaultFlowTableShards = 64

// maxFlowTableSlots bounds interned backend identities (slot is 16 bits).
const maxFlowTableSlots = 1 << 16

// NewFlowTable creates a table holding about capacity flows, split over
// shards locks (both rounded up to powers of two; shards <= 0 selects
// DefaultFlowTableShards). Memory is allocated once: capacity × 16 bytes.
func NewFlowTable(capacity, shards int) *FlowTable {
	if capacity < ftBucketWay {
		capacity = ftBucketWay
	}
	nShards := 1
	if shards <= 0 {
		shards = DefaultFlowTableShards
	}
	for nShards < shards {
		nShards <<= 1
	}
	totalBuckets := 1
	for totalBuckets*ftBucketWay < capacity {
		totalBuckets <<= 1
	}
	if totalBuckets < nShards {
		nShards = totalBuckets
	}
	bucketsPerShard := totalBuckets / nShards

	t := &FlowTable{
		shardMask:  uint64(nShards - 1),
		bucketMask: uint64(bucketsPerShard - 1),
		shardBits:  uint(bitsFor(nShards)),
		shards:     make([]flowTableShard, nShards),
	}
	for i := range t.shards {
		t.shards[i].entries = make([]flowTableEntry, bucketsPerShard*ftBucketWay)
	}
	t.view.Store(&flowTableView{
		epoch:    1,
		minEpoch: 1,
		slots:    map[string]uint16{},
	})
	return t
}

func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// locate returns the shard and the first entry index of flow's bucket.
func (t *FlowTable) locate(flow uint64) (*flowTableShard, int) {
	h := shardMix(flow)
	s := &t.shards[h&t.shardMask]
	bucket := (h >> t.shardBits) & t.bucketMask
	return s, int(bucket) * ftBucketWay
}

// Capacity returns the number of entry sockets the table holds.
func (t *FlowTable) Capacity() int {
	return len(t.shards) * len(t.shards[0].entries)
}

// Shards returns the shard count.
func (t *FlowTable) Shards() int { return len(t.shards) }

// Epoch returns the current release generation.
func (t *FlowTable) Epoch() uint32 { return t.view.Load().epoch }

// EntryWrites returns the cumulative count of per-entry mutations. Epoch
// bumps and backend-set publications never move it.
func (t *FlowTable) EntryWrites() uint64 { return t.entryWrites.Load() }

// EpochBumps returns how many times Bump ran.
func (t *FlowTable) EpochBumps() uint64 { return t.epochBumps.Load() }

// Len returns the number of occupied entries (including ones whose
// generation has been invalidated but not yet overwritten).
func (t *FlowTable) Len() int {
	total := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		total += s.count
		s.mu.Unlock()
	}
	return total
}

// SetBackends publishes the routable backend set: names keep (or are
// assigned) stable slots and are marked live; every previously known name
// missing from names has its slot tombstoned, flipping all flows pinned
// to it in this one O(1) publication. Entry arrays are untouched.
func (t *FlowTable) SetBackends(names []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.view.Load()
	nv := &flowTableView{
		epoch:    old.epoch,
		minEpoch: old.minEpoch,
		names:    append([]string(nil), old.names...),
		live:     make([]bool, len(old.live)),
		slots:    make(map[string]uint16, len(old.slots)+len(names)),
	}
	for k, v := range old.slots {
		nv.slots[k] = v
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, n := range sorted {
		slot, ok := nv.slots[n]
		if !ok {
			if len(nv.names) >= maxFlowTableSlots {
				continue // slot space exhausted: flows fall through to Maglev
			}
			slot = uint16(len(nv.names))
			nv.slots[n] = slot
			nv.names = append(nv.names, n)
			nv.live = append(nv.live, false)
		}
		for int(slot) >= len(nv.live) {
			nv.live = append(nv.live, false)
		}
		nv.live[slot] = true
	}
	t.view.Store(nv)
}

// Bump advances the release generation. With invalidate, the validity
// window closes behind the new epoch: every entry written under an older
// generation is dead after this single publication — the O(1) routing
// flip for a takeover that must not touch N entries. Without invalidate,
// existing pins stay routable and only new writes carry the new tag
// (bookkeeping bump, e.g. a release that kept the backend set).
func (t *FlowTable) Bump(invalidate bool) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.view.Load()
	nv := &flowTableView{
		epoch:    old.epoch + 1,
		minEpoch: old.minEpoch,
		names:    old.names,
		live:     old.live,
		slots:    old.slots,
	}
	if invalidate {
		nv.minEpoch = nv.epoch
	}
	t.view.Store(nv)
	t.epochBumps.Add(1)
	return nv.epoch
}

// lookupView resolves an entry against a view: the entry must be from a
// still-routable generation and point at a live slot.
func (v *flowTableView) resolve(e flowTableEntry) (string, bool) {
	if !e.occupied() {
		return "", false
	}
	ep := e.epoch()
	if ep < v.minEpoch || ep > v.epoch {
		return "", false
	}
	slot := int(e.slot())
	if slot >= len(v.live) || !v.live[slot] {
		return "", false
	}
	return v.names[slot], true
}

// Lookup returns the pinned backend for flow, if the pin's generation is
// still routable and its backend is live.
func (t *FlowTable) Lookup(flow uint64) (string, bool) {
	v := t.view.Load()
	s, base := t.locate(flow)
	s.mu.Lock()
	for i := base; i < base+ftBucketWay; i++ {
		e := s.entries[i]
		if e.occupied() && e.key == flow {
			name, ok := v.resolve(e)
			s.mu.Unlock()
			return name, ok
		}
	}
	s.mu.Unlock()
	return "", false
}

// Insert pins flow to backend under the current generation. It reports
// false when backend has no interned slot (unknown to SetBackends) — the
// caller simply falls through to Maglev on the next packet.
func (t *FlowTable) Insert(flow uint64, backend string) bool {
	v := t.view.Load()
	slot, ok := v.slots[backend]
	if !ok {
		return false
	}
	s, base := t.locate(flow)
	s.mu.Lock()
	t.storeLocked(s, base, flow, ftMeta(slot, v.epoch))
	s.mu.Unlock()
	return true
}

// storeLocked writes {flow, meta} into the bucket at base: in place when
// flow is already pinned, into a free socket otherwise, evicting the
// oldest-generation entry when the bucket is full. Caller holds s.mu.
func (t *FlowTable) storeLocked(s *flowTableShard, base int, flow, meta uint64) {
	free, victim := -1, base
	victimEpoch := uint32(0xffffffff)
	for i := base; i < base+ftBucketWay; i++ {
		e := s.entries[i]
		if !e.occupied() {
			if free < 0 {
				free = i
			}
			continue
		}
		if e.key == flow {
			s.entries[i].meta = meta
			t.entryWrites.Add(1)
			return
		}
		if ep := e.epoch(); ep < victimEpoch {
			victimEpoch, victim = ep, i
		}
	}
	at := free
	if at < 0 {
		at = victim // overwrite the stalest generation's pin
	} else {
		s.count++
	}
	s.entries[at] = flowTableEntry{key: flow, meta: meta}
	t.entryWrites.Add(1)
}

// Delete removes flow's pin.
func (t *FlowTable) Delete(flow uint64) {
	s, base := t.locate(flow)
	s.mu.Lock()
	for i := base; i < base+ftBucketWay; i++ {
		if s.entries[i].occupied() && s.entries[i].key == flow {
			s.entries[i] = flowTableEntry{}
			s.count--
			t.entryWrites.Add(1)
			break
		}
	}
	s.mu.Unlock()
}

// Update runs fn under flow's shard lock with the currently resolved pin
// (ok=false when absent, dead-generation, or tombstoned) and applies the
// result: keep=false deletes the pin, otherwise next is pinned under the
// current generation. This is the validate-and-replace primitive Steer's
// stale path uses so a concurrent re-pick of the same flow cannot
// resurrect a just-replaced entry. fn must not call back into the table.
func (t *FlowTable) Update(flow uint64, fn func(cur string, ok bool) (next string, keep bool)) {
	v := t.view.Load()
	s, base := t.locate(flow)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := "", false
	at := -1
	for i := base; i < base+ftBucketWay; i++ {
		e := s.entries[i]
		if e.occupied() && e.key == flow {
			at = i
			cur, ok = v.resolve(e)
			break
		}
	}
	next, keep := fn(cur, ok)
	if !keep {
		if at >= 0 {
			s.entries[at] = flowTableEntry{}
			s.count--
			t.entryWrites.Add(1)
		}
		return
	}
	if ok && next == cur {
		return // unchanged pin: no write
	}
	// Re-load the view: fn may have observed a newer routing snapshot and
	// its pick must be interned against the freshest slot map.
	v = t.view.Load()
	slot, have := v.slots[next]
	if !have {
		return
	}
	t.storeLocked(s, base, flow, ftMeta(slot, v.epoch))
}

// Occupancy returns Len()/Capacity() in parts per thousand, the gauge the
// fleet telemetry scrapes.
func (t *FlowTable) Occupancy() int {
	c := t.Capacity()
	if c == 0 {
		return 0
	}
	return t.Len() * 1000 / c
}
