package mqtt

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Client is a minimal MQTT client state machine over a provided transport.
// The transport may be a direct TCP connection or (in the full topology)
// a connection terminated by an Edge proxy and relayed through the tunnel.
type Client struct {
	conn         net.Conn
	clientID     string
	cleanSession bool
	props        map[string]string

	mu       sync.Mutex
	nextID   uint16
	pending  map[uint16]chan *Packet // PUBACK/SUBACK waiters
	closed   bool
	closeErr error

	msgs chan *Packet
	pong chan struct{}
	done chan struct{}
}

// NewClient wraps conn. Connect must be called before other operations.
func NewClient(conn net.Conn, clientID string, cleanSession bool) *Client {
	return &Client{
		conn:         conn,
		clientID:     clientID,
		cleanSession: cleanSession,
		nextID:       1,
		pending:      make(map[uint16]chan *Packet),
		msgs:         make(chan *Packet, 256),
		pong:         make(chan struct{}, 1),
		done:         make(chan struct{}),
	}
}

// SetConnectProperty attaches a key/value property to the CONNECT packet
// sent by Connect (e.g. the x-zdr-trace context). Must be called before
// Connect.
func (c *Client) SetConnectProperty(k, v string) {
	if c.props == nil {
		c.props = map[string]string{}
	}
	c.props[k] = v
}

// ErrClientClosed is returned after the client's transport dies.
var ErrClientClosed = errors.New("mqtt: client closed")

// Connect performs the CONNECT/CONNACK handshake and starts the read loop.
func (c *Client) Connect(keepAlive time.Duration, timeout time.Duration) (*Packet, error) {
	if timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	err := Encode(c.conn, &Packet{
		Type:         CONNECT,
		ClientID:     c.clientID,
		CleanSession: c.cleanSession,
		KeepAlive:    uint16(keepAlive / time.Second),
		Properties:   c.props,
	})
	if err != nil {
		return nil, err
	}
	ack, err := Decode(c.conn)
	if err != nil {
		return nil, err
	}
	if ack.Type != CONNACK {
		return nil, fmt.Errorf("mqtt: expected CONNACK, got %v", ack.Type)
	}
	if ack.ReturnCode != ConnAccepted {
		return ack, fmt.Errorf("mqtt: connection refused (code %d)", ack.ReturnCode)
	}
	go c.readLoop()
	return ack, nil
}

func (c *Client) readLoop() {
	for {
		p, err := Decode(c.conn)
		if err != nil {
			c.shutdown(err)
			return
		}
		switch p.Type {
		case PUBLISH:
			select {
			case c.msgs <- p:
			default: // drop over backpressure rather than stall
			}
		case PUBACK, SUBACK:
			c.mu.Lock()
			ch, ok := c.pending[p.PacketID]
			delete(c.pending, p.PacketID)
			c.mu.Unlock()
			if ok {
				ch <- p
			}
		case PINGRESP:
			select {
			case c.pong <- struct{}{}:
			default:
			}
		}
	}
}

func (c *Client) shutdown(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.closeErr = err
	pend := c.pending
	c.pending = map[uint16]chan *Packet{}
	c.mu.Unlock()
	for _, ch := range pend {
		close(ch)
	}
	c.conn.Close()
	close(c.done)
}

// Done is closed when the transport dies.
func (c *Client) Done() <-chan struct{} { return c.done }

// Err returns the terminal error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeErr != nil && !errors.Is(c.closeErr, io.EOF) {
		return c.closeErr
	}
	return nil
}

// Messages returns the channel of received PUBLISH packets.
func (c *Client) Messages() <-chan *Packet { return c.msgs }

func (c *Client) allocWaiter() (uint16, chan *Packet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, ErrClientClosed
	}
	id := c.nextID
	c.nextID++
	if c.nextID == 0 {
		c.nextID = 1
	}
	ch := make(chan *Packet, 1)
	c.pending[id] = ch
	return id, ch, nil
}

func await(ch chan *Packet, timeout time.Duration) (*Packet, error) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case p, ok := <-ch:
		if !ok {
			return nil, ErrClientClosed
		}
		return p, nil
	case <-t.C:
		return nil, errors.New("mqtt: timeout waiting for ack")
	}
}

// Subscribe adds topic filters and waits for the SUBACK.
func (c *Client) Subscribe(timeout time.Duration, filters ...string) error {
	id, ch, err := c.allocWaiter()
	if err != nil {
		return err
	}
	if err := Encode(c.conn, &Packet{Type: SUBSCRIBE, PacketID: id, TopicFilters: filters}); err != nil {
		return err
	}
	_, err = await(ch, timeout)
	return err
}

// Publish sends payload on topic. QoS 1 waits for the PUBACK.
func (c *Client) Publish(topic string, payload []byte, qos uint8, timeout time.Duration) error {
	p := &Packet{Type: PUBLISH, Topic: topic, Payload: payload, QoS: qos}
	if qos == 0 {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.closed {
			return ErrClientClosed
		}
		return Encode(c.conn, p)
	}
	id, ch, err := c.allocWaiter()
	if err != nil {
		return err
	}
	p.PacketID = id
	if err := Encode(c.conn, p); err != nil {
		return err
	}
	_, err = await(ch, timeout)
	return err
}

// Ping round-trips a PINGREQ (§4.2: "MQTT clients periodically exchange
// ping ... and initiate new connections as soon as transport layer
// sessions are broken").
func (c *Client) Ping(timeout time.Duration) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	err := Encode(c.conn, &Packet{Type: PINGREQ})
	c.mu.Unlock()
	if err != nil {
		return err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-c.pong:
		return nil
	case <-c.done:
		return ErrClientClosed
	case <-t.C:
		return errors.New("mqtt: ping timeout")
	}
}

// Disconnect sends DISCONNECT and closes the transport.
func (c *Client) Disconnect() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	err := Encode(c.conn, &Packet{Type: DISCONNECT})
	c.mu.Unlock()
	c.shutdown(ErrClientClosed)
	return err
}
