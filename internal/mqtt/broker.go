package mqtt

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"zdr/internal/faults"
	"zdr/internal/metrics"
	"zdr/internal/netx"
)

// Broker is an MQTT pub/sub back-end (§2.1 "special-purpose servers, e.g.
// Publish/Subscribe brokers"). Sessions are keyed by the client identifier,
// which in the paper's architecture is the globally unique user-id used to
// route re_connect attempts (§4.2).
//
// Connection-context semantics implement the DCR server side:
//
//   - CONNECT with CleanSession=true creates (or replaces) a session: the
//     normal path for a user's first connection.
//   - CONNECT with CleanSession=false is a resume — the wire form of
//     re_connect. If the broker holds connection context for the
//     client ID it accepts (CONNACK SessionPresent=true, the paper's
//     connect_ack) and atomically splices delivery onto the new transport;
//     otherwise it refuses (CONNACK return code ≠ 0, the paper's
//     connect_refuse) and the edge falls back to a normal client
//     re-connect.
type Broker struct {
	name string
	reg  *metrics.Registry

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool

	faults atomic.Pointer[faults.Injector]
	// tuning, when set, is applied to every accepted transport before
	// any fault wrapper hides the descriptor. Advisory; see netx.TuneConn.
	tuning atomic.Pointer[netx.ConnTuning]

	// parked tracks event-loop watches for idle connections served by
	// ServeLoop, so Close can retire them (closing a parked conn drops
	// its kernel-side epoll interest silently; the watch bookkeeping must
	// be cancelled explicitly).
	parkedMu sync.Mutex
	parked   map[*netx.Watch]struct{}

	wg sync.WaitGroup
}

// SetFaults installs a fault injector on the accept path: every
// connection accepted by Serve is wrapped with an injected fault
// schedule (chaos testing). Pass nil to remove it. Safe to call
// concurrently with Serve.
func (b *Broker) SetFaults(in *faults.Injector) {
	b.faults.Store(in)
}

// SetTuning installs socket options (netx.ConnTuning) applied to every
// transport the broker accepts. Pass nil to stop tuning. Safe to call
// concurrently with Serve.
func (b *Broker) SetTuning(t *netx.ConnTuning) {
	b.tuning.Store(t)
}

// tune applies the installed tuning to a freshly accepted conn;
// failures are counted, never fatal.
func (b *Broker) tune(conn net.Conn) {
	if err := netx.TuneConn(conn, b.tuning.Load()); err != nil {
		b.reg.Counter("mqtt.tune.errors").Inc()
	}
}

// session is per-user connection context.
type session struct {
	id string

	mu   sync.Mutex
	conn net.Conn // nil while detached
	subs []string
	gen  uint64 // bumped on each transport splice
}

// NewBroker creates a broker. reg may be nil.
func NewBroker(name string, reg *metrics.Registry) *Broker {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Broker{
		name:     name,
		reg:      reg,
		sessions: make(map[string]*session),
		parked:   make(map[*netx.Watch]struct{}),
	}
}

// Metrics returns the broker's registry.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// ErrBrokerClosed is returned by Serve after Close.
var ErrBrokerClosed = errors.New("mqtt: broker closed")

// Serve accepts connections from ln until it is closed.
func (b *Broker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		b.tune(conn)
		conn = b.faults.Load().Conn(conn)
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.ServeConn(conn)
		}()
	}
}

// ServeConn handles one transport connection: a direct client or a relay
// carrying one tunneled user. It returns when the transport dies; session
// context is retained for a future resume.
func (b *Broker) ServeConn(conn net.Conn) error {
	defer conn.Close()
	sess, gen, keepAlive, err := b.handshake(conn)
	if err != nil || sess == nil {
		return err
	}
	for {
		if keepAlive > 0 {
			conn.SetReadDeadline(time.Now().Add(keepAlive + keepAlive/2))
		}
		pkt, err := Decode(conn)
		if err != nil {
			b.detach(sess, conn, gen)
			return err
		}
		keep, err := b.handlePacket(sess, conn, gen, pkt)
		if err != nil || !keep {
			b.detach(sess, conn, gen)
			return err
		}
	}
}

// handshake runs the CONNECT/CONNACK exchange and splices the transport
// into its session. A nil session with nil error means the connection was
// answered and is done (a refused resume). Shared by the goroutine-per-
// conn path (ServeConn) and the event-loop path (ServeLoop).
func (b *Broker) handshake(conn net.Conn) (sess *session, gen uint64, keepAlive time.Duration, err error) {
	p, err := Decode(conn)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("mqtt: reading CONNECT: %w", err)
	}
	if p.Type != CONNECT {
		return nil, 0, 0, fmt.Errorf("mqtt: first packet was %v, want CONNECT", p.Type)
	}
	if p.ClientID == "" {
		Encode(conn, &Packet{Type: CONNACK, ReturnCode: ConnRefusedIDRejected})
		return nil, 0, 0, errors.New("mqtt: empty client id")
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, 0, 0, ErrBrokerClosed
	}
	sess, exists := b.sessions[p.ClientID]
	if p.CleanSession {
		// Fresh context (replaces any stale one).
		sess = &session{id: p.ClientID}
		b.sessions[p.ClientID] = sess
		exists = false
	} else if !exists {
		// Resume with no context: refuse (DCR connect_refuse).
		b.mu.Unlock()
		b.reg.Counter("mqtt.connect.refused").Inc()
		return nil, 0, 0, Encode(conn, &Packet{Type: CONNACK, ReturnCode: ConnRefusedIDRejected})
	}
	b.mu.Unlock()

	// Splice the transport into the session.
	sess.mu.Lock()
	if old := sess.conn; old != nil && old != conn {
		old.Close()
	}
	sess.conn = conn
	sess.gen++
	gen = sess.gen
	sess.mu.Unlock()

	b.reg.Counter("mqtt.connack.sent").Inc()
	if exists {
		b.reg.Counter("mqtt.connect.resumed").Inc()
	} else {
		b.reg.Counter("mqtt.connect.new").Inc()
	}
	if err := Encode(conn, &Packet{Type: CONNACK, SessionPresent: exists, ReturnCode: ConnAccepted}); err != nil {
		b.detach(sess, conn, gen)
		return nil, 0, 0, err
	}
	return sess, gen, time.Duration(p.KeepAlive) * time.Second, nil
}

// handlePacket processes one post-handshake packet. keep=false means the
// transport is done (graceful DISCONNECT); the caller detaches.
func (b *Broker) handlePacket(sess *session, conn net.Conn, gen uint64, pkt *Packet) (keep bool, err error) {
	switch pkt.Type {
	case PUBLISH:
		b.reg.Counter("mqtt.publish.received").Inc()
		b.Publish(pkt.Topic, pkt.Payload)
		if pkt.QoS == 1 {
			if err := b.send(sess, &Packet{Type: PUBACK, PacketID: pkt.PacketID}); err != nil {
				return false, err
			}
		}
		return true, nil
	case SUBSCRIBE:
		sess.mu.Lock()
		for _, f := range pkt.TopicFilters {
			if !contains(sess.subs, f) {
				sess.subs = append(sess.subs, f)
			}
		}
		sess.mu.Unlock()
		granted := make([]uint8, len(pkt.TopicFilters))
		if err := b.send(sess, &Packet{Type: SUBACK, PacketID: pkt.PacketID, GrantedQoS: granted}); err != nil {
			return false, err
		}
		return true, nil
	case PINGREQ:
		if err := b.send(sess, &Packet{Type: PINGRESP}); err != nil {
			return false, err
		}
		return true, nil
	case DISCONNECT:
		// Graceful disconnect retains context (the transport may be a
		// relay that is being restarted; the user is still out there).
		return false, nil
	default:
		return false, fmt.Errorf("mqtt: unexpected packet %v", pkt.Type)
	}
}

// ServeLoop is Serve for idle-heavy fleets: connections are parked in an
// epoll EventLoop between packets instead of holding a goroutine each, so
// a million mostly-idle MQTT sessions cost watch records, not stacks
// (DESIGN.md §11). The handshake still runs on a short-lived goroutine
// (CONNECT may arrive fragmented); after CONNACK the transport is parked
// and only borrows a loop worker while a packet is actually readable.
// Peer hang-ups are reaped via EPOLLRDHUP.
//
// Loop-mode limitations, by design: keep-alive expiry is not enforced
// while parked (a dead peer is reaped by RDHUP, not by deadline), and
// fault-wrapped connections (SetFaults) fall back to goroutine-per-conn
// since the wrapper hides the raw socket.
//
// Accepting stays a blocking goroutine: one goroutine per *listener* is
// the cheap part (and closing a listener drops its epoll registration
// silently, which would leave a loop-driven accept unable to observe the
// shutdown) — the per-*connection* goroutines are what the loop
// eliminates. ServeLoop returns when ln is closed.
func (b *Broker) ServeLoop(ln net.Listener, loop *netx.EventLoop) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		b.tune(conn)
		conn = b.faults.Load().Conn(conn)
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.serveLoopConn(loop, conn)
		}()
	}
}

// serveLoopConn runs the handshake, then parks the connection in loop.
func (b *Broker) serveLoopConn(loop *netx.EventLoop, conn net.Conn) {
	rawConn, ok := conn.(syscall.Conn)
	if !ok {
		// Fault-wrapped (or otherwise opaque) transport: serve it the
		// classic way.
		b.ServeConn(conn)
		return
	}
	sess, gen, _, err := b.handshake(conn)
	if err != nil || sess == nil {
		conn.Close()
		return
	}
	gParked := b.reg.Gauge("mqtt.loop.parked")
	reap := func(w *netx.Watch) {
		b.detach(sess, conn, gen)
		conn.Close()
		if b.unpark(w) {
			gParked.Dec()
		}
		w.Cancel()
	}
	w, err := loop.Watch(rawConn, func(w *netx.Watch, r netx.Readiness) {
		if r.HangUp {
			reap(w)
			return
		}
		// Readable: the packet is (mostly) buffered already; a deadline
		// bounds a peer that stalls mid-packet so a loop worker is never
		// held hostage.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		pkt, err := Decode(conn)
		conn.SetReadDeadline(time.Time{})
		if err != nil {
			reap(w)
			return
		}
		keep, err := b.handlePacket(sess, conn, gen, pkt)
		if err != nil || !keep {
			reap(w)
			return
		}
		if err := w.Rearm(); err != nil {
			reap(w)
		}
	})
	if err != nil {
		b.detach(sess, conn, gen)
		conn.Close()
		return
	}
	b.parkedMu.Lock()
	b.parked[w] = struct{}{}
	b.parkedMu.Unlock()
	gParked.Inc()
	// The handler may have reaped before the stash above; settle the
	// bookkeeping it could not see.
	if w.Stopped() && b.unpark(w) {
		gParked.Dec()
	}
}

func (b *Broker) unpark(w *netx.Watch) bool {
	b.parkedMu.Lock()
	_, ok := b.parked[w]
	delete(b.parked, w)
	b.parkedMu.Unlock()
	return ok
}

// detach clears the session transport if it is still the one this handler
// owns (a resume may already have replaced it).
func (b *Broker) detach(sess *session, conn net.Conn, gen uint64) {
	sess.mu.Lock()
	if sess.gen == gen && sess.conn == conn {
		sess.conn = nil
	}
	sess.mu.Unlock()
}

// send writes a packet to the session's current transport.
func (b *Broker) send(sess *session, p *Packet) error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.conn == nil {
		return fmt.Errorf("mqtt: session %s detached", sess.id)
	}
	return Encode(sess.conn, p)
}

// Publish delivers payload on topic to every attached session with a
// matching subscription, returning the delivery count. It is both the
// client-publish fan-out and the API for server-initiated notifications
// (the "live notifications" workload of §4.2).
func (b *Broker) Publish(topic string, payload []byte) int {
	b.mu.Lock()
	targets := make([]*session, 0, len(b.sessions))
	for _, s := range b.sessions {
		targets = append(targets, s)
	}
	b.mu.Unlock()

	delivered := 0
	for _, s := range targets {
		s.mu.Lock()
		match := false
		for _, f := range s.subs {
			if TopicMatches(f, topic) {
				match = true
				break
			}
		}
		if match && s.conn != nil {
			if err := Encode(s.conn, &Packet{Type: PUBLISH, Topic: topic, Payload: payload}); err == nil {
				delivered++
			}
		}
		s.mu.Unlock()
	}
	b.reg.Counter("mqtt.publish.delivered").Add(int64(delivered))
	return delivered
}

// HasSession reports whether connection context exists for clientID.
func (b *Broker) HasSession(clientID string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.sessions[clientID]
	return ok
}

// SessionAttached reports whether clientID currently has a live transport.
func (b *Broker) SessionAttached(clientID string) bool {
	b.mu.Lock()
	s, ok := b.sessions[clientID]
	b.mu.Unlock()
	if !ok {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn != nil
}

// SessionCount returns the number of sessions with context.
func (b *Broker) SessionCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.sessions)
}

// DropSession discards connection context (used by failure-injection
// tests to force the connect_refuse path).
func (b *Broker) DropSession(clientID string) {
	b.mu.Lock()
	s, ok := b.sessions[clientID]
	delete(b.sessions, clientID)
	b.mu.Unlock()
	if ok {
		s.mu.Lock()
		if s.conn != nil {
			s.conn.Close()
			s.conn = nil
		}
		s.mu.Unlock()
	}
}

// Close drops all sessions and waits for handlers to finish. Listeners
// passed to Serve must be closed by the caller.
func (b *Broker) Close() {
	b.mu.Lock()
	b.closed = true
	sessions := b.sessions
	b.sessions = map[string]*session{}
	b.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		if s.conn != nil {
			s.conn.Close()
			s.conn = nil
		}
		s.mu.Unlock()
	}
	// Closing a parked conn silently drops its kernel-side epoll interest;
	// retire the watch bookkeeping too.
	b.parkedMu.Lock()
	parked := b.parked
	b.parked = make(map[*netx.Watch]struct{})
	b.parkedMu.Unlock()
	for w := range parked {
		w.Cancel()
	}
	b.wg.Wait()
}

func contains(ss []string, s string) bool {
	for _, have := range ss {
		if have == s {
			return true
		}
	}
	return false
}
