package mqtt

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"zdr/internal/faults"
	"zdr/internal/metrics"
)

// Broker is an MQTT pub/sub back-end (§2.1 "special-purpose servers, e.g.
// Publish/Subscribe brokers"). Sessions are keyed by the client identifier,
// which in the paper's architecture is the globally unique user-id used to
// route re_connect attempts (§4.2).
//
// Connection-context semantics implement the DCR server side:
//
//   - CONNECT with CleanSession=true creates (or replaces) a session: the
//     normal path for a user's first connection.
//   - CONNECT with CleanSession=false is a resume — the wire form of
//     re_connect. If the broker holds connection context for the
//     client ID it accepts (CONNACK SessionPresent=true, the paper's
//     connect_ack) and atomically splices delivery onto the new transport;
//     otherwise it refuses (CONNACK return code ≠ 0, the paper's
//     connect_refuse) and the edge falls back to a normal client
//     re-connect.
type Broker struct {
	name string
	reg  *metrics.Registry

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool

	faults atomic.Pointer[faults.Injector]

	wg sync.WaitGroup
}

// SetFaults installs a fault injector on the accept path: every
// connection accepted by Serve is wrapped with an injected fault
// schedule (chaos testing). Pass nil to remove it. Safe to call
// concurrently with Serve.
func (b *Broker) SetFaults(in *faults.Injector) {
	b.faults.Store(in)
}

// session is per-user connection context.
type session struct {
	id string

	mu   sync.Mutex
	conn net.Conn // nil while detached
	subs []string
	gen  uint64 // bumped on each transport splice
}

// NewBroker creates a broker. reg may be nil.
func NewBroker(name string, reg *metrics.Registry) *Broker {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Broker{name: name, reg: reg, sessions: make(map[string]*session)}
}

// Metrics returns the broker's registry.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// ErrBrokerClosed is returned by Serve after Close.
var ErrBrokerClosed = errors.New("mqtt: broker closed")

// Serve accepts connections from ln until it is closed.
func (b *Broker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		conn = b.faults.Load().Conn(conn)
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.ServeConn(conn)
		}()
	}
}

// ServeConn handles one transport connection: a direct client or a relay
// carrying one tunneled user. It returns when the transport dies; session
// context is retained for a future resume.
func (b *Broker) ServeConn(conn net.Conn) error {
	defer conn.Close()
	p, err := Decode(conn)
	if err != nil {
		return fmt.Errorf("mqtt: reading CONNECT: %w", err)
	}
	if p.Type != CONNECT {
		return fmt.Errorf("mqtt: first packet was %v, want CONNECT", p.Type)
	}
	if p.ClientID == "" {
		Encode(conn, &Packet{Type: CONNACK, ReturnCode: ConnRefusedIDRejected})
		return errors.New("mqtt: empty client id")
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrBrokerClosed
	}
	sess, exists := b.sessions[p.ClientID]
	if p.CleanSession {
		// Fresh context (replaces any stale one).
		sess = &session{id: p.ClientID}
		b.sessions[p.ClientID] = sess
		exists = false
	} else if !exists {
		// Resume with no context: refuse (DCR connect_refuse).
		b.mu.Unlock()
		b.reg.Counter("mqtt.connect.refused").Inc()
		return Encode(conn, &Packet{Type: CONNACK, ReturnCode: ConnRefusedIDRejected})
	}
	b.mu.Unlock()

	// Splice the transport into the session.
	sess.mu.Lock()
	if old := sess.conn; old != nil && old != conn {
		old.Close()
	}
	sess.conn = conn
	sess.gen++
	gen := sess.gen
	sess.mu.Unlock()

	b.reg.Counter("mqtt.connack.sent").Inc()
	if exists {
		b.reg.Counter("mqtt.connect.resumed").Inc()
	} else {
		b.reg.Counter("mqtt.connect.new").Inc()
	}
	if err := Encode(conn, &Packet{Type: CONNACK, SessionPresent: exists, ReturnCode: ConnAccepted}); err != nil {
		return err
	}

	keepAlive := time.Duration(p.KeepAlive) * time.Second
	for {
		if keepAlive > 0 {
			conn.SetReadDeadline(time.Now().Add(keepAlive + keepAlive/2))
		}
		pkt, err := Decode(conn)
		if err != nil {
			b.detach(sess, conn, gen)
			return err
		}
		switch pkt.Type {
		case PUBLISH:
			b.reg.Counter("mqtt.publish.received").Inc()
			b.Publish(pkt.Topic, pkt.Payload)
			if pkt.QoS == 1 {
				if err := b.send(sess, &Packet{Type: PUBACK, PacketID: pkt.PacketID}); err != nil {
					b.detach(sess, conn, gen)
					return err
				}
			}
		case SUBSCRIBE:
			sess.mu.Lock()
			for _, f := range pkt.TopicFilters {
				if !contains(sess.subs, f) {
					sess.subs = append(sess.subs, f)
				}
			}
			sess.mu.Unlock()
			granted := make([]uint8, len(pkt.TopicFilters))
			if err := b.send(sess, &Packet{Type: SUBACK, PacketID: pkt.PacketID, GrantedQoS: granted}); err != nil {
				b.detach(sess, conn, gen)
				return err
			}
		case PINGREQ:
			if err := b.send(sess, &Packet{Type: PINGRESP}); err != nil {
				b.detach(sess, conn, gen)
				return err
			}
		case DISCONNECT:
			// Graceful disconnect retains context (the transport may be a
			// relay that is being restarted; the user is still out there).
			b.detach(sess, conn, gen)
			return nil
		default:
			b.detach(sess, conn, gen)
			return fmt.Errorf("mqtt: unexpected packet %v", pkt.Type)
		}
	}
}

// detach clears the session transport if it is still the one this handler
// owns (a resume may already have replaced it).
func (b *Broker) detach(sess *session, conn net.Conn, gen uint64) {
	sess.mu.Lock()
	if sess.gen == gen && sess.conn == conn {
		sess.conn = nil
	}
	sess.mu.Unlock()
}

// send writes a packet to the session's current transport.
func (b *Broker) send(sess *session, p *Packet) error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.conn == nil {
		return fmt.Errorf("mqtt: session %s detached", sess.id)
	}
	return Encode(sess.conn, p)
}

// Publish delivers payload on topic to every attached session with a
// matching subscription, returning the delivery count. It is both the
// client-publish fan-out and the API for server-initiated notifications
// (the "live notifications" workload of §4.2).
func (b *Broker) Publish(topic string, payload []byte) int {
	b.mu.Lock()
	targets := make([]*session, 0, len(b.sessions))
	for _, s := range b.sessions {
		targets = append(targets, s)
	}
	b.mu.Unlock()

	delivered := 0
	for _, s := range targets {
		s.mu.Lock()
		match := false
		for _, f := range s.subs {
			if TopicMatches(f, topic) {
				match = true
				break
			}
		}
		if match && s.conn != nil {
			if err := Encode(s.conn, &Packet{Type: PUBLISH, Topic: topic, Payload: payload}); err == nil {
				delivered++
			}
		}
		s.mu.Unlock()
	}
	b.reg.Counter("mqtt.publish.delivered").Add(int64(delivered))
	return delivered
}

// HasSession reports whether connection context exists for clientID.
func (b *Broker) HasSession(clientID string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.sessions[clientID]
	return ok
}

// SessionAttached reports whether clientID currently has a live transport.
func (b *Broker) SessionAttached(clientID string) bool {
	b.mu.Lock()
	s, ok := b.sessions[clientID]
	b.mu.Unlock()
	if !ok {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn != nil
}

// SessionCount returns the number of sessions with context.
func (b *Broker) SessionCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.sessions)
}

// DropSession discards connection context (used by failure-injection
// tests to force the connect_refuse path).
func (b *Broker) DropSession(clientID string) {
	b.mu.Lock()
	s, ok := b.sessions[clientID]
	delete(b.sessions, clientID)
	b.mu.Unlock()
	if ok {
		s.mu.Lock()
		if s.conn != nil {
			s.conn.Close()
			s.conn = nil
		}
		s.mu.Unlock()
	}
}

// Close drops all sessions and waits for handlers to finish. Listeners
// passed to Serve must be closed by the caller.
func (b *Broker) Close() {
	b.mu.Lock()
	b.closed = true
	sessions := b.sessions
	b.sessions = map[string]*session{}
	b.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		if s.conn != nil {
			s.conn.Close()
			s.conn = nil
		}
		s.mu.Unlock()
	}
	b.wg.Wait()
}

func contains(ss []string, s string) bool {
	for _, have := range ss {
		if have == s {
			return true
		}
	}
	return false
}
