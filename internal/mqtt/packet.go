// Package mqtt implements the subset of MQTT 3.1.1 the paper's
// publish/subscribe tier needs (§2.1, §4.2): CONNECT/CONNACK,
// PUBLISH/PUBACK (QoS 0 and 1), SUBSCRIBE/SUBACK, PINGREQ/PINGRESP and
// DISCONNECT, plus a broker that keeps per-user connection context and a
// client state machine.
//
// MQTT is the protocol the paper singles out as having no built-in
// disruption-avoidance: "MQTT does not have a built-in disruption
// avoidance support in case of Proxygen restarts and relies on client
// re-connects" — which is exactly why Downstream Connection Reuse exists.
// The broker here therefore implements the §4.2 server side: sessions are
// keyed by a globally unique user-id, the broker retains connection
// context, and a relay hand-over (re_connect) is accepted if and only if
// context for that user exists.
package mqtt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// PacketType is the MQTT control packet type (high nibble of byte 1).
type PacketType uint8

// MQTT 3.1.1 packet types (the supported subset).
const (
	CONNECT    PacketType = 1
	CONNACK    PacketType = 2
	PUBLISH    PacketType = 3
	PUBACK     PacketType = 4
	SUBSCRIBE  PacketType = 8
	SUBACK     PacketType = 9
	PINGREQ    PacketType = 12
	PINGRESP   PacketType = 13
	DISCONNECT PacketType = 14
)

// String returns the packet type name.
func (t PacketType) String() string {
	switch t {
	case CONNECT:
		return "CONNECT"
	case CONNACK:
		return "CONNACK"
	case PUBLISH:
		return "PUBLISH"
	case PUBACK:
		return "PUBACK"
	case SUBSCRIBE:
		return "SUBSCRIBE"
	case SUBACK:
		return "SUBACK"
	case PINGREQ:
		return "PINGREQ"
	case PINGRESP:
		return "PINGRESP"
	case DISCONNECT:
		return "DISCONNECT"
	default:
		return fmt.Sprintf("UNKNOWN(%d)", uint8(t))
	}
}

// CONNACK return codes.
const (
	ConnAccepted          uint8 = 0
	ConnRefusedIDRejected uint8 = 2
	ConnRefusedUnavail    uint8 = 3
)

// Packet is a decoded MQTT control packet. Only fields relevant to the
// packet's type are populated.
type Packet struct {
	Type PacketType

	// CONNECT
	ClientID  string
	KeepAlive uint16 // seconds
	// CleanSession, when false, asks the broker to resume existing
	// session state — the property DCR relies on.
	CleanSession bool
	// Properties are optional key/value pairs appended after the
	// ClientID in the CONNECT payload (carrying e.g. the x-zdr-trace
	// context). Decoders that predate the extension ignore the trailing
	// bytes, so the wire stays compatible in both directions.
	Properties map[string]string

	// CONNACK
	SessionPresent bool
	ReturnCode     uint8

	// PUBLISH / PUBACK / SUBSCRIBE / SUBACK
	Topic    string
	Payload  []byte
	QoS      uint8
	PacketID uint16
	// SUBSCRIBE
	TopicFilters []string
	// SUBACK
	GrantedQoS []uint8
}

const protocolName = "MQTT"
const protocolLevel = 4 // MQTT 3.1.1

// maxRemainingLength bounds packet size (1 MiB; the spec allows 256 MiB).
const maxRemainingLength = 1 << 20

var errMalformed = errors.New("mqtt: malformed packet")

// writeRemainingLength emits the MQTT variable-length encoding.
func writeRemainingLength(w io.Writer, n int) error {
	if n < 0 || n > maxRemainingLength {
		return fmt.Errorf("mqtt: remaining length %d out of range", n)
	}
	var buf [4]byte
	i := 0
	for {
		b := byte(n % 128)
		n /= 128
		if n > 0 {
			b |= 0x80
		}
		buf[i] = b
		i++
		if n == 0 {
			break
		}
	}
	_, err := w.Write(buf[:i])
	return err
}

// readRemainingLength parses the variable-length encoding.
func readRemainingLength(r io.Reader) (int, error) {
	mul, val := 1, 0
	var b [1]byte
	for i := 0; i < 4; i++ {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		val += int(b[0]&0x7f) * mul
		if b[0]&0x80 == 0 {
			if val > maxRemainingLength {
				return 0, fmt.Errorf("%w: remaining length %d too large", errMalformed, val)
			}
			return val, nil
		}
		mul *= 128
	}
	return 0, fmt.Errorf("%w: remaining length overlong", errMalformed)
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errMalformed
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	if len(b) < n {
		return "", nil, errMalformed
	}
	return string(b[:n]), b[n:], nil
}

// Encode serializes p to w.
func Encode(w io.Writer, p *Packet) error {
	var body []byte
	fixedFlags := uint8(0)
	switch p.Type {
	case CONNECT:
		if len(p.ClientID) > 0xffff {
			return fmt.Errorf("mqtt: client id too long")
		}
		body = appendString(body, protocolName)
		body = append(body, protocolLevel)
		var connectFlags uint8
		if p.CleanSession {
			connectFlags |= 0x02
		}
		body = append(body, connectFlags)
		body = binary.BigEndian.AppendUint16(body, p.KeepAlive)
		body = appendString(body, p.ClientID)
		if len(p.Properties) > 0 {
			keys := make([]string, 0, len(p.Properties))
			for k := range p.Properties {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			body = binary.BigEndian.AppendUint16(body, uint16(len(keys)))
			for _, k := range keys {
				body = appendString(body, k)
				body = appendString(body, p.Properties[k])
			}
		}
	case CONNACK:
		var sp uint8
		if p.SessionPresent {
			sp = 1
		}
		body = append(body, sp, p.ReturnCode)
	case PUBLISH:
		fixedFlags = p.QoS << 1
		body = appendString(body, p.Topic)
		if p.QoS > 0 {
			body = binary.BigEndian.AppendUint16(body, p.PacketID)
		}
		body = append(body, p.Payload...)
	case PUBACK:
		body = binary.BigEndian.AppendUint16(body, p.PacketID)
	case SUBSCRIBE:
		fixedFlags = 0x2 // reserved bits per spec
		body = binary.BigEndian.AppendUint16(body, p.PacketID)
		for _, f := range p.TopicFilters {
			body = appendString(body, f)
			body = append(body, p.QoS)
		}
	case SUBACK:
		body = binary.BigEndian.AppendUint16(body, p.PacketID)
		body = append(body, p.GrantedQoS...)
	case PINGREQ, PINGRESP, DISCONNECT:
		// no body
	default:
		return fmt.Errorf("mqtt: cannot encode packet type %v", p.Type)
	}
	hdr := []byte{byte(p.Type)<<4 | fixedFlags}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if err := writeRemainingLength(w, len(body)); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// Decode parses one packet from r.
func Decode(r io.Reader) (*Packet, error) {
	var first [1]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return nil, err
	}
	ptype := PacketType(first[0] >> 4)
	flags := first[0] & 0x0f
	n, err := readRemainingLength(r)
	if err != nil {
		return nil, err
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	p := &Packet{Type: ptype}
	switch ptype {
	case CONNECT:
		name, rest, err := takeString(body)
		if err != nil || name != protocolName {
			return nil, fmt.Errorf("%w: bad protocol name", errMalformed)
		}
		if len(rest) < 4 {
			return nil, errMalformed
		}
		if rest[0] != protocolLevel {
			return nil, fmt.Errorf("%w: protocol level %d", errMalformed, rest[0])
		}
		p.CleanSession = rest[1]&0x02 != 0
		p.KeepAlive = binary.BigEndian.Uint16(rest[2:4])
		var trailer []byte
		p.ClientID, trailer, err = takeString(rest[4:])
		if err != nil {
			return nil, err
		}
		p.Properties = decodeConnectProperties(trailer)
	case CONNACK:
		if len(body) != 2 {
			return nil, errMalformed
		}
		p.SessionPresent = body[0]&1 != 0
		p.ReturnCode = body[1]
	case PUBLISH:
		p.QoS = (flags >> 1) & 0x3
		if p.QoS > 1 {
			return nil, fmt.Errorf("mqtt: QoS %d unsupported", p.QoS)
		}
		var rest []byte
		p.Topic, rest, err = takeString(body)
		if err != nil {
			return nil, err
		}
		if p.QoS > 0 {
			if len(rest) < 2 {
				return nil, errMalformed
			}
			p.PacketID = binary.BigEndian.Uint16(rest[:2])
			rest = rest[2:]
		}
		p.Payload = rest
	case PUBACK:
		if len(body) != 2 {
			return nil, errMalformed
		}
		p.PacketID = binary.BigEndian.Uint16(body)
	case SUBSCRIBE:
		if len(body) < 2 {
			return nil, errMalformed
		}
		p.PacketID = binary.BigEndian.Uint16(body[:2])
		rest := body[2:]
		for len(rest) > 0 {
			var f string
			f, rest, err = takeString(rest)
			if err != nil {
				return nil, err
			}
			if len(rest) < 1 {
				return nil, errMalformed
			}
			p.QoS = rest[0]
			rest = rest[1:]
			p.TopicFilters = append(p.TopicFilters, f)
		}
		if len(p.TopicFilters) == 0 {
			return nil, fmt.Errorf("%w: SUBSCRIBE without filters", errMalformed)
		}
	case SUBACK:
		if len(body) < 2 {
			return nil, errMalformed
		}
		p.PacketID = binary.BigEndian.Uint16(body[:2])
		p.GrantedQoS = body[2:]
	case PINGREQ, PINGRESP, DISCONNECT:
		if len(body) != 0 {
			return nil, errMalformed
		}
	default:
		return nil, fmt.Errorf("mqtt: unknown packet type %d", ptype)
	}
	return p, nil
}

// decodeConnectProperties parses the optional key/value trailer after the
// ClientID. Best-effort: a trailer this decoder does not understand is
// ignored (it may belong to a future extension), never an error.
func decodeConnectProperties(b []byte) map[string]string {
	if len(b) < 2 {
		return nil
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	props := make(map[string]string, n)
	for i := 0; i < n; i++ {
		var k, v string
		var err error
		if k, b, err = takeString(b); err != nil {
			return nil
		}
		if v, b, err = takeString(b); err != nil {
			return nil
		}
		props[k] = v
	}
	if len(props) == 0 {
		return nil
	}
	return props
}

// TopicMatches reports whether topic matches filter, honouring the MQTT
// wildcards "+" (one level) and "#" (remaining levels, last position only).
func TopicMatches(filter, topic string) bool {
	fi, ti := 0, 0
	for {
		fSeg, fRest, fMore := nextSegment(filter, fi)
		tSeg, tRest, tMore := nextSegment(topic, ti)
		switch fSeg {
		case "#":
			return true
		case "+":
			// matches exactly one level
		default:
			if fSeg != tSeg {
				return false
			}
		}
		if !fMore && !tMore {
			return true
		}
		if fMore != tMore {
			// One side has more levels. "a/#" also matches "a".
			if fMore {
				seg, _, more := nextSegment(filter, fRest)
				return seg == "#" && !more
			}
			return false
		}
		fi, ti = fRest, tRest
	}
}

// nextSegment returns the topic level starting at i, the index after its
// separator, and whether more levels follow.
func nextSegment(s string, i int) (seg string, next int, more bool) {
	for j := i; j < len(s); j++ {
		if s[j] == '/' {
			return s[i:j], j + 1, true
		}
	}
	return s[i:], len(s), false
}
