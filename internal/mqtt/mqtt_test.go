package mqtt

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestRemainingLengthRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 16383, 16384, maxRemainingLength} {
		var buf bytes.Buffer
		if err := writeRemainingLength(&buf, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := readRemainingLength(&buf)
		if err != nil || got != n {
			t.Fatalf("n=%d: got %d err %v", n, got, err)
		}
	}
	var buf bytes.Buffer
	if err := writeRemainingLength(&buf, maxRemainingLength+1); err == nil {
		t.Fatal("accepted oversize length")
	}
}

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatalf("encode %v: %v", p.Type, err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode %v: %v", p.Type, err)
	}
	return got
}

func TestPacketRoundTrips(t *testing.T) {
	cases := []*Packet{
		{Type: CONNECT, ClientID: "user-42", KeepAlive: 30, CleanSession: true},
		{Type: CONNECT, ClientID: "user-43", CleanSession: false},
		{Type: CONNACK, SessionPresent: true, ReturnCode: 0},
		{Type: CONNACK, ReturnCode: ConnRefusedIDRejected},
		{Type: PUBLISH, Topic: "notif/u42", Payload: []byte("hello"), QoS: 0},
		{Type: PUBLISH, Topic: "t", Payload: []byte{}, QoS: 1, PacketID: 9},
		{Type: PUBACK, PacketID: 9},
		{Type: SUBSCRIBE, PacketID: 3, TopicFilters: []string{"a/+/c", "#"}},
		{Type: SUBACK, PacketID: 3, GrantedQoS: []uint8{0, 0}},
		{Type: PINGREQ},
		{Type: PINGRESP},
		{Type: DISCONNECT},
	}
	for _, in := range cases {
		got := roundTrip(t, in)
		if got.Type != in.Type {
			t.Fatalf("type %v != %v", got.Type, in.Type)
		}
		switch in.Type {
		case CONNECT:
			if got.ClientID != in.ClientID || got.KeepAlive != in.KeepAlive || got.CleanSession != in.CleanSession {
				t.Fatalf("CONNECT mismatch: %+v vs %+v", got, in)
			}
		case CONNACK:
			if got.SessionPresent != in.SessionPresent || got.ReturnCode != in.ReturnCode {
				t.Fatalf("CONNACK mismatch: %+v vs %+v", got, in)
			}
		case PUBLISH:
			if got.Topic != in.Topic || !bytes.Equal(got.Payload, in.Payload) || got.QoS != in.QoS || got.PacketID != in.PacketID {
				t.Fatalf("PUBLISH mismatch: %+v vs %+v", got, in)
			}
		case SUBSCRIBE:
			if !reflect.DeepEqual(got.TopicFilters, in.TopicFilters) || got.PacketID != in.PacketID {
				t.Fatalf("SUBSCRIBE mismatch: %+v vs %+v", got, in)
			}
		}
	}
}

func TestPublishRoundTripProperty(t *testing.T) {
	f := func(topic string, payload []byte, qos bool) bool {
		if len(topic) > 0xffff || len(payload) > maxRemainingLength/2 {
			return true
		}
		p := &Packet{Type: PUBLISH, Topic: topic, Payload: payload}
		if qos {
			p.QoS, p.PacketID = 1, 77
		}
		var buf bytes.Buffer
		if err := Encode(&buf, p); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return got.Topic == topic && bytes.Equal(got.Payload, payload) && got.QoS == p.QoS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{0x10, 0x02, 0x00, 0x00},      // CONNECT with bogus body
		{0x20, 0x01, 0x00},            // CONNACK with 1-byte body
		{0xc0, 0x01, 0x00},            // PINGREQ with body
		{0x36, 0x03, 0x00, 0x01, 'a'}, // PUBLISH QoS3
		{0xf0, 0x00},                  // reserved type 15
		{0x80, 0x01, 0x00},            // SUBSCRIBE truncated
	}
	for _, raw := range cases {
		if _, err := Decode(bytes.NewReader(raw)); err == nil {
			t.Errorf("accepted %v", raw)
		}
	}
}

func TestTopicMatches(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		{"a/b/c", "a/b/c", true},
		{"a/b/c", "a/b/x", false},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/b/d", false},
		{"a/+/c", "a/c", false},
		{"#", "anything/at/all", true},
		{"a/#", "a/b/c", true},
		{"a/#", "a", true},
		{"a/#", "b/a", false},
		{"+", "a", true},
		{"+", "a/b", false},
		{"notif/+", "notif/u42", true},
		{"", "", true},
		{"a", "a/b", false},
	}
	for _, c := range cases {
		if got := TopicMatches(c.filter, c.topic); got != c.want {
			t.Errorf("TopicMatches(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
	}
}

func startBroker(t *testing.T) (*Broker, string) {
	t.Helper()
	b := NewBroker("test", nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(ln)
	t.Cleanup(func() { ln.Close(); b.Close() })
	return b, ln.Addr().String()
}

func dialClient(t *testing.T, addr, id string, clean bool) *Client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, id, clean)
	t.Cleanup(func() { c.Disconnect() })
	return c
}

func TestBrokerConnectSubscribePublish(t *testing.T) {
	b, addr := startBroker(t)
	sub := dialClient(t, addr, "user-1", true)
	if _, err := sub.Connect(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sub.Subscribe(2*time.Second, "notif/user-1"); err != nil {
		t.Fatal(err)
	}
	if n := b.Publish("notif/user-1", []byte("ping!")); n != 1 {
		t.Fatalf("delivered to %d sessions, want 1", n)
	}
	select {
	case m := <-sub.Messages():
		if m.Topic != "notif/user-1" || string(m.Payload) != "ping!" {
			t.Fatalf("message = %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("publish never delivered")
	}
	if !b.HasSession("user-1") || b.SessionCount() != 1 {
		t.Fatal("session bookkeeping wrong")
	}
}

func TestBrokerClientToClientPublish(t *testing.T) {
	_, addr := startBroker(t)
	sub := dialClient(t, addr, "sub", true)
	if _, err := sub.Connect(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sub.Subscribe(2*time.Second, "chat/#"); err != nil {
		t.Fatal(err)
	}
	pub := dialClient(t, addr, "pub", true)
	if _, err := pub.Connect(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("chat/room1", []byte("hey"), 1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub.Messages():
		if string(m.Payload) != "hey" {
			t.Fatalf("payload = %q", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cross-client publish lost")
	}
}

func TestBrokerPing(t *testing.T) {
	_, addr := startBroker(t)
	c := dialClient(t, addr, "pinger", true)
	if _, err := c.Connect(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Ping(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBrokerResume is the DCR-critical behaviour: a resume CONNECT
// (CleanSession=false) splices onto existing context with
// SessionPresent=true, retaining subscriptions.
func TestBrokerResume(t *testing.T) {
	b, addr := startBroker(t)
	c1 := dialClient(t, addr, "user-7", true)
	if _, err := c1.Connect(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c1.Subscribe(2*time.Second, "notif/user-7"); err != nil {
		t.Fatal(err)
	}
	// Transport dies (the relaying proxy restarts); context must remain.
	c1.conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for b.SessionAttached("user-7") {
		if time.Now().After(deadline) {
			t.Fatal("session never detached")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !b.HasSession("user-7") {
		t.Fatal("context lost on transport death")
	}

	// Resume over a new transport (the re_connect path).
	c2 := dialClient(t, addr, "user-7", false)
	ack, err := c2.Connect(0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.SessionPresent {
		t.Fatal("resume should report SessionPresent (connect_ack)")
	}
	// Old subscription must still deliver without re-subscribing.
	if n := b.Publish("notif/user-7", []byte("still here")); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	select {
	case m := <-c2.Messages():
		if string(m.Payload) != "still here" {
			t.Fatalf("payload = %q", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("post-resume delivery lost")
	}
	if b.Metrics().CounterValue("mqtt.connect.resumed") != 1 {
		t.Fatal("resume not counted")
	}
}

// TestBrokerResumeRefused: resume with no context → CONNACK refusal
// (connect_refuse), and the client treats it as an error.
func TestBrokerResumeRefused(t *testing.T) {
	b, addr := startBroker(t)
	c := dialClient(t, addr, "ghost", false)
	ack, err := c.Connect(0, 2*time.Second)
	if err == nil {
		t.Fatal("resume without context must fail")
	}
	if ack == nil || ack.ReturnCode == ConnAccepted {
		t.Fatalf("ack = %+v", ack)
	}
	if b.Metrics().CounterValue("mqtt.connect.refused") != 1 {
		t.Fatal("refusal not counted")
	}
}

// TestBrokerResumeStealsTransport: a resume closes the stale transport so
// exactly one path delivers (no duplicate delivery through a dying relay).
func TestBrokerResumeStealsTransport(t *testing.T) {
	b, addr := startBroker(t)
	c1 := dialClient(t, addr, "user-9", true)
	if _, err := c1.Connect(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c1.Subscribe(2*time.Second, "t"); err != nil {
		t.Fatal(err)
	}
	c2 := dialClient(t, addr, "user-9", false)
	if _, err := c2.Connect(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if n := b.Publish("t", []byte("x")); n != 1 {
		t.Fatalf("delivered %d, want exactly 1", n)
	}
	select {
	case <-c2.Messages():
	case <-time.After(2 * time.Second):
		t.Fatal("new transport did not receive")
	}
	select {
	case <-c1.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("old transport not closed after splice")
	}
}

func TestBrokerDropSession(t *testing.T) {
	b, addr := startBroker(t)
	c := dialClient(t, addr, "user-d", true)
	if _, err := c.Connect(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	b.DropSession("user-d")
	if b.HasSession("user-d") {
		t.Fatal("session survived drop")
	}
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("client transport not closed on drop")
	}
}

func TestBrokerRejectsEmptyClientID(t *testing.T) {
	_, addr := startBroker(t)
	c := dialClient(t, addr, "", true)
	if _, err := c.Connect(0, 2*time.Second); err == nil {
		t.Fatal("empty client id accepted")
	}
}

func TestBrokerRejectsNonConnectFirst(t *testing.T) {
	_, addr := startBroker(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	Encode(conn, &Packet{Type: PINGREQ})
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := Decode(conn); err == nil {
		t.Fatal("broker answered a connection that never sent CONNECT")
	}
}

func BenchmarkEncodePublish(b *testing.B) {
	p := &Packet{Type: PUBLISH, Topic: "notif/user-12345", Payload: bytes.Repeat([]byte("m"), 128)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		Encode(&buf, p)
	}
}

func BenchmarkTopicMatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TopicMatches("a/+/c/#", "a/b/c/d/e")
	}
}

// TestBrokerKeepAliveEnforced: a client that declares a keep-alive and
// then goes silent is disconnected after ~1.5x the interval (§4.2: MQTT
// clients periodically exchange pings; a dead transport must be detected).
func TestBrokerKeepAliveEnforced(t *testing.T) {
	_, addr := startBroker(t)
	c := dialClient(t, addr, "sleepy", true)
	if _, err := c.Connect(time.Second, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// No pings. The broker must cut us off between 1.5s and ~4s.
	select {
	case <-c.Done():
	case <-time.After(4 * time.Second):
		t.Fatal("silent client never disconnected despite keep-alive")
	}
}

// TestBrokerKeepAliveSatisfiedByPings: regular pings keep the session up.
func TestBrokerKeepAliveSatisfiedByPings(t *testing.T) {
	_, addr := startBroker(t)
	c := dialClient(t, addr, "awake", true)
	if _, err := c.Connect(time.Second, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		time.Sleep(500 * time.Millisecond)
		if err := c.Ping(2 * time.Second); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
}
