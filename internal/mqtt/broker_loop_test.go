package mqtt

import (
	"fmt"
	"net"
	"testing"
	"time"

	"zdr/internal/netx"
)

func startLoopBroker(t *testing.T) (*Broker, *netx.EventLoop, net.Listener) {
	t.Helper()
	b := NewBroker("loop-broker", nil)
	loop, err := netx.NewEventLoop(netx.EventLoopConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- b.ServeLoop(ln, loop) }()
	t.Cleanup(func() {
		ln.Close()
		select {
		case err := <-serveDone:
			if err != nil {
				t.Errorf("ServeLoop: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("ServeLoop did not return after listener close")
		}
		b.Close()
		loop.Close()
	})
	return b, loop, ln
}

// TestBrokerServeLoopBasic runs the full MQTT exchange — connect,
// subscribe, publish round-trip, ping — against a loop-mode broker.
func TestBrokerServeLoopBasic(t *testing.T) {
	b, _, ln := startLoopBroker(t)

	dial := func(id string) *Client {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c := NewClient(conn, id, true)
		if _, err := c.Connect(30*time.Second, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		return c
	}
	sub := dial("user-sub")
	defer sub.Disconnect()
	pub := dial("user-pub")
	defer pub.Disconnect()

	if err := sub.Subscribe(2*time.Second, "news/#"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("news/today", []byte("hello"), 1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub.Messages():
		if string(m.Payload) != "hello" {
			t.Fatalf("payload = %q", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscriber did not receive publish")
	}
	if err := sub.Ping(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !b.SessionAttached("user-sub") {
		t.Fatal("session not attached")
	}
}

// TestBrokerServeLoopIdlePark: parked idle sessions cost watches, not
// goroutines, and a hang-up reaps the transport while retaining session
// context (the DCR resume contract).
func TestBrokerServeLoopIdlePark(t *testing.T) {
	b, loop, ln := startLoopBroker(t)

	const clients = 50
	conns := make([]*Client, 0, clients)
	for i := 0; i < clients; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c := NewClient(conn, fmt.Sprintf("user-%d", i), true)
		if _, err := c.Connect(0, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	// All parked: the loop holds one watch per session.
	deadline := time.Now().Add(2 * time.Second)
	for loop.Watched() < clients {
		if time.Now().After(deadline) {
			t.Fatalf("Watched = %d, want %d", loop.Watched(), clients)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := b.Metrics().GaugeValue("mqtt.loop.parked"); got != clients {
		t.Fatalf("parked gauge = %d want %d", got, clients)
	}

	// Kill half the transports abruptly: RDHUP reaps them, context stays.
	for i := 0; i < clients/2; i++ {
		conns[i].conn.Close()
	}
	deadline = time.Now().Add(2 * time.Second)
	for b.Metrics().GaugeValue("mqtt.loop.parked") > clients/2 {
		if time.Now().After(deadline) {
			t.Fatalf("parked gauge stuck at %d", b.Metrics().GaugeValue("mqtt.loop.parked"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < clients/2; i++ {
		if !b.HasSession(fmt.Sprintf("user-%d", i)) {
			t.Fatalf("session user-%d lost after transport death", i)
		}
		if b.SessionAttached(fmt.Sprintf("user-%d", i)) {
			t.Fatalf("session user-%d still attached after transport death", i)
		}
	}
	// Survivors still work.
	if err := conns[clients-1].Ping(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, c := range conns[clients/2:] {
		c.Disconnect()
	}
}

// TestBrokerServeLoopResume: the DCR resume (CleanSession=false) works
// against a loop-mode broker — the new transport splices in and is parked
// in turn.
func TestBrokerServeLoopResume(t *testing.T) {
	b, _, ln := startLoopBroker(t)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, "user-r", true)
	if _, err := c.Connect(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(2*time.Second, "a/b"); err != nil {
		t.Fatal(err)
	}
	conn.Close() // transport dies; context survives

	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(conn2, "user-r", false)
	ack, err := c2.Connect(0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.SessionPresent {
		t.Fatal("resume did not find session context")
	}
	defer c2.Disconnect()
	// Old subscription still live on the new transport.
	if n := b.Publish("a/b", []byte("resumed")); n != 1 {
		t.Fatalf("delivered %d want 1", n)
	}
	select {
	case m := <-c2.Messages():
		if string(m.Payload) != "resumed" {
			t.Fatalf("payload = %q", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("resumed transport did not receive publish")
	}
}
