package mqtt

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

func TestConnectPropertiesRoundTrip(t *testing.T) {
	p := &Packet{
		Type:         CONNECT,
		ClientID:     "user-1",
		CleanSession: true,
		KeepAlive:    30,
		Properties: map[string]string{
			"x-zdr-trace": "zdr1-0123456789abcdef-fedcba9876543210",
			"other":       "value",
		},
	}
	got := roundTrip(t, p)
	if !reflect.DeepEqual(got.Properties, p.Properties) {
		t.Fatalf("properties = %v, want %v", got.Properties, p.Properties)
	}
	if got.ClientID != "user-1" || !got.CleanSession || got.KeepAlive != 30 {
		t.Fatalf("base CONNECT fields corrupted: %+v", got)
	}
}

func TestConnectWithoutPropertiesStaysBareOnTheWire(t *testing.T) {
	// A property-less CONNECT must encode exactly as before the extension
	// (no trailer at all), so old decoders see nothing new.
	var buf bytes.Buffer
	if err := Encode(&buf, &Packet{Type: CONNECT, ClientID: "id"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Variable header (10 bytes) + client id (2+2). The payload ends right
	// after the ClientID string.
	wantLen := 2 + 10 + 2 + len("id")
	if len(raw) != wantLen {
		t.Fatalf("bare CONNECT is %d bytes, want %d (trailer leaked)", len(raw), wantLen)
	}
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Properties != nil {
		t.Fatalf("bare CONNECT decoded properties %v", got.Properties)
	}
}

func TestConnectPropertiesEncodingIsDeterministic(t *testing.T) {
	p := &Packet{Type: CONNECT, ClientID: "c", Properties: map[string]string{
		"b": "2", "a": "1", "c": "3",
	}}
	var first bytes.Buffer
	if err := Encode(&first, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again bytes.Buffer
		if err := Encode(&again, p); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatal("CONNECT properties encode nondeterministically (map iteration order leaked)")
		}
	}
}

func TestConnectMalformedTrailerIgnored(t *testing.T) {
	// A trailer that is not a valid property block is discarded, not an
	// error — it may belong to a future extension this decoder predates.
	var buf bytes.Buffer
	if err := Encode(&buf, &Packet{Type: CONNECT, ClientID: "id"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Claim 3 properties but provide none.
	trailer := binary.BigEndian.AppendUint16(nil, 3)
	raw = append(raw, trailer...)
	raw[1] += byte(len(trailer)) // fix remaining length (still single byte here)
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("malformed trailer rejected: %v", err)
	}
	if got.Properties != nil {
		t.Fatalf("malformed trailer produced properties %v", got.Properties)
	}
}

// TestClientConnectPropertyReachesBroker drives the property through the
// real client/broker handshake: the broker's CONNECT decode must surface
// what the client attached.
func TestClientConnectPropertyReachesBroker(t *testing.T) {
	srv, cli := net.Pipe()
	defer srv.Close()

	got := make(chan map[string]string, 1)
	go func() {
		p, err := Decode(srv)
		if err != nil {
			got <- nil
			return
		}
		Encode(srv, &Packet{Type: CONNACK, ReturnCode: ConnAccepted})
		got <- p.Properties
		io.Copy(io.Discard, srv) // keep the pipe drained so Disconnect's write completes
	}()

	c := NewClient(cli, "user-9", true)
	c.SetConnectProperty("x-zdr-trace", "zdr1-00000000000000aa-00000000000000bb")
	if _, err := c.Connect(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	props := <-got
	if props["x-zdr-trace"] != "zdr1-00000000000000aa-00000000000000bb" {
		t.Fatalf("broker saw properties %v", props)
	}
}
