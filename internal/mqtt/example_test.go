package mqtt_test

import (
	"fmt"
	"net"
	"time"

	"zdr/internal/mqtt"
)

// Example runs a broker, connects a client, and delivers a notification —
// then resumes the session over a new transport (the DCR splice) without
// re-subscribing.
func Example() {
	broker := mqtt.NewBroker("b", nil)
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	go broker.Serve(ln)
	defer broker.Close()

	conn, _ := net.Dial("tcp", ln.Addr().String())
	c := mqtt.NewClient(conn, "user-1", true)
	if _, err := c.Connect(0, 2*time.Second); err != nil {
		panic(err)
	}
	if err := c.Subscribe(2*time.Second, "notif/user-1"); err != nil {
		panic(err)
	}
	broker.Publish("notif/user-1", []byte("hello"))
	m := <-c.Messages()
	fmt.Printf("got %q\n", m.Payload)

	// Transport dies; context survives; resume splices.
	conn.Close()
	conn2, _ := net.Dial("tcp", ln.Addr().String())
	c2 := mqtt.NewClient(conn2, "user-1", false) // CleanSession=false = re_connect
	ack, err := c2.Connect(0, 2*time.Second)
	if err != nil {
		panic(err)
	}
	fmt.Println("session present:", ack.SessionPresent)
	broker.Publish("notif/user-1", []byte("still here"))
	m = <-c2.Messages()
	fmt.Printf("got %q without re-subscribing\n", m.Payload)
	c2.Disconnect()
	// Output:
	// got "hello"
	// session present: true
	// got "still here" without re-subscribing
}

// ExampleTopicMatches demonstrates the MQTT wildcard rules.
func ExampleTopicMatches() {
	fmt.Println(mqtt.TopicMatches("notif/+", "notif/user-7"))
	fmt.Println(mqtt.TopicMatches("notif/#", "notif/user-7/badges"))
	fmt.Println(mqtt.TopicMatches("notif/+", "chat/user-7"))
	// Output:
	// true
	// true
	// false
}
