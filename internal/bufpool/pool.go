// Package bufpool provides tiered, reusable byte buffers for the data
// plane. Every hot copy loop in the repo (proxy pumps, h2t frame I/O,
// chunked transfer coding, app-server body reads, quicx datagrams) moves
// bytes through short-lived scratch buffers; allocating them per unit of
// work makes the garbage collector a per-packet cost. This package fronts
// a small set of size-tiered sync.Pools so steady-state forwarding
// allocates nothing.
//
// Ownership rule (see DESIGN.md §8): the goroutine that calls Get must
// either Put the buffer itself or hand ownership to exactly one receiver
// who does. Data that outlives the buffer must be copied out before Put —
// nothing in this package retains or clears payload bytes, so a buffer
// must never be Put while any reader can still see it.
//
// The API trades a pointer indirection for zero-allocation round-trips:
// sync.Pool boxes interface values, so pooling raw []byte headers would
// cost one allocation per Put. Callers hold the *[]byte for the Put and
// slice it for I/O.
package bufpool

import (
	"io"
	"sync"
)

// Tier sizes. Get rounds a request up to the smallest tier that fits;
// requests beyond the largest tier fall through to a plain allocation
// that Put discards.
const (
	TierSmall  = 4 << 10   // chunked bodies, datagrams, app-server chunks
	TierMedium = 16 << 10  // h2t frame scratch, MQTT pumps
	TierLarge  = 64 << 10  // max h2t frame / max datagram, proxy copy loops
	TierXLarge = 256 << 10 // PPR body capture
)

var tiers = [...]int{TierSmall, TierMedium, TierLarge, TierXLarge}

var pools [len(tiers)]sync.Pool

func init() {
	for i, size := range tiers {
		size := size
		pools[i].New = func() any {
			b := make([]byte, size)
			return &b
		}
	}
}

// tierFor returns the pool index for a size, or -1 if it exceeds every
// tier.
func tierFor(size int) int {
	for i, t := range tiers {
		if size <= t {
			return i
		}
	}
	return -1
}

// Get returns a buffer with len(*p) >= size (len equals the tier size, so
// callers reading "as much as fits" get the whole tier). The buffer
// contents are unspecified. Callers must return it with Put.
func Get(size int) *[]byte {
	if i := tierFor(size); i >= 0 {
		return pools[i].Get().(*[]byte)
	}
	b := make([]byte, size)
	return &b
}

// Put returns a buffer obtained from Get to its tier. Buffers whose
// capacity matches no tier (oversize Get results, or foreign slices) are
// dropped for the collector. Put restores the full tier length, so a
// caller may shrink *p freely before returning it. nil is a no-op.
func Put(p *[]byte) {
	if p == nil {
		return
	}
	c := cap(*p)
	for i, t := range tiers {
		if c == t {
			*p = (*p)[:c]
			pools[i].Put(p)
			return
		}
	}
}

// Copy is io.Copy through a pooled TierLarge buffer: proxy relay loops
// use it so long-lived byte pumps don't each allocate io.Copy's internal
// 32 KiB scratch. Like io.CopyBuffer, the buffer is bypassed when src or
// dst implement the io.WriterTo / io.ReaderFrom fast paths.
func Copy(dst io.Writer, src io.Reader) (int64, error) {
	p := Get(TierLarge)
	defer Put(p)
	return io.CopyBuffer(dst, src, *p)
}
