package bufpool

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestGetRoundsUpToTier(t *testing.T) {
	cases := []struct{ ask, want int }{
		{1, TierSmall},
		{TierSmall, TierSmall},
		{TierSmall + 1, TierMedium},
		{TierMedium, TierMedium},
		{TierLarge, TierLarge},
		{TierXLarge, TierXLarge},
	}
	for _, c := range cases {
		p := Get(c.ask)
		if len(*p) != c.want || cap(*p) != c.want {
			t.Fatalf("Get(%d): len=%d cap=%d, want tier %d", c.ask, len(*p), cap(*p), c.want)
		}
		Put(p)
	}
}

func TestGetOversizeFallsThrough(t *testing.T) {
	const big = TierXLarge + 1
	p := Get(big)
	if len(*p) != big {
		t.Fatalf("len = %d, want %d", len(*p), big)
	}
	Put(p) // dropped, not pooled; must not panic
}

func TestPutRestoresTierLength(t *testing.T) {
	p := Get(TierSmall)
	*p = (*p)[:17] // caller shrank it
	Put(p)
	q := Get(TierSmall)
	if len(*q) != TierSmall {
		t.Fatalf("recycled buffer has len %d, want %d", len(*q), TierSmall)
	}
	Put(q)
}

func TestPutNilNoop(t *testing.T) {
	Put(nil)
	var empty []byte
	Put(&empty) // cap 0 matches no tier: dropped
}

func TestCopy(t *testing.T) {
	// strings.Reader implements WriterTo, which would bypass the buffer;
	// wrap it so the pooled path is the one exercised.
	src := strings.Repeat("zdr", 50_000)
	var dst bytes.Buffer
	n, err := Copy(&dst, io.LimitReader(strings.NewReader(src), int64(len(src))))
	if err != nil || n != int64(len(src)) {
		t.Fatalf("Copy = %d, %v", n, err)
	}
	if dst.String() != src {
		t.Fatal("Copy corrupted data")
	}
}

// TestGetPutSteadyStateAllocs pins the package's reason to exist: a
// Get/Put round-trip on a warmed pool performs zero allocations.
func TestGetPutSteadyStateAllocs(t *testing.T) {
	Put(Get(TierMedium)) // warm
	avg := testing.AllocsPerRun(100, func() {
		p := Get(TierMedium)
		(*p)[0] = 1
		Put(p)
	})
	if avg != 0 {
		t.Fatalf("Get/Put allocates %.1f objects per round-trip, want 0", avg)
	}
}

func BenchmarkGetPut(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p := Get(TierLarge)
			(*p)[0] = 1
			Put(p)
		}
	})
}
