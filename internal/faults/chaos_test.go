// Chaos suite: drives the full Edge → Origin → AppServer (and broker)
// topology through rolling restarts while deterministic fault schedules
// run underneath, asserting the paper's §3 disruption model: zero
// client-visible disruption for TCP and MQTT, bounded (retry-absorbed)
// disruption for UDP. Disruption is classified through internal/metrics
// counters, not just client-side error counts.
package faults_test

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"zdr/internal/appserver"
	"zdr/internal/core"
	"zdr/internal/faults"
	"zdr/internal/http1"
	"zdr/internal/mqtt"
	"zdr/internal/proxy"
	"zdr/internal/quicx"
)

// chaosTopo is one full in-process deployment: broker, app-server slot,
// origin slot, edge slot — every tier individually restartable.
type chaosTopo struct {
	broker   *mqtt.Broker
	brokerLn net.Listener
	app      *core.AppServerSlot
	origin   *core.ProxySlot
	edge     *core.ProxySlot
}

// buildChaosTopo stands the deployment up. originCfg/edgeCfg mutate each
// generation's proxy config before it is built (the injector hook-in
// point); either may be nil.
func buildChaosTopo(t *testing.T, originCfg, edgeCfg func(*proxy.Config)) *chaosTopo {
	t.Helper()
	dir := t.TempDir()

	brokerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	broker := mqtt.NewBroker("broker", nil)
	go broker.Serve(brokerLn)
	t.Cleanup(func() { brokerLn.Close(); broker.Close() })

	app := &core.AppServerSlot{
		SlotName: "as",
		Build: func() *appserver.Server {
			return appserver.New(appserver.Config{Name: "as", DrainPeriod: 100 * time.Millisecond}, nil)
		},
	}
	if err := app.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)

	originGen := 0
	origin := &core.ProxySlot{
		SlotName: "origin",
		Path:     filepath.Join(dir, "origin.sock"),
		Build: func() *proxy.Proxy {
			originGen++
			cfg := proxy.Config{
				Name:        fmt.Sprintf("origin-g%d", originGen),
				Role:        proxy.RoleOrigin,
				AppServers:  []string{app.Addr()},
				Brokers:     []string{brokerLn.Addr().String()},
				DrainPeriod: 400 * time.Millisecond,
			}
			if originCfg != nil {
				originCfg(&cfg)
			}
			return proxy.New(cfg, nil)
		},
	}
	if err := origin.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(origin.Close)

	tunnelAddr := origin.Current().Addr(proxy.VIPTunnel)
	edgeGen := 0
	edge := &core.ProxySlot{
		SlotName: "edge",
		Path:     filepath.Join(dir, "edge.sock"),
		Build: func() *proxy.Proxy {
			edgeGen++
			cfg := proxy.Config{
				Name:          fmt.Sprintf("edge-g%d", edgeGen),
				Role:          proxy.RoleEdge,
				Origins:       []string{tunnelAddr},
				DrainPeriod:   400 * time.Millisecond,
				StaticContent: map[string][]byte{"/cached": []byte("dsr-bytes")},
			}
			if edgeCfg != nil {
				edgeCfg(&cfg)
			}
			return proxy.New(cfg, nil)
		},
	}
	if err := edge.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(edge.Close)
	return &chaosTopo{broker: broker, brokerLn: brokerLn, app: app, origin: origin, edge: edge}
}

// doHTTP runs one request on a fresh connection and checks the echo.
func doHTTP(addr, method, path string, body []byte) error {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	var r *http1.Request
	if body != nil {
		r = http1.NewRequest(method, path, bytes.NewReader(body), int64(len(body)))
	} else {
		r = http1.NewRequest(method, path, nil, 0)
	}
	if _, err := http1.WriteRequest(conn, r); err != nil {
		return fmt.Errorf("write: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return fmt.Errorf("read: %w", err)
	}
	if resp.StatusCode != 200 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	echoed, err := http1.ReadFullBody(resp.Body)
	if err != nil {
		return fmt.Errorf("body: %w", err)
	}
	if body != nil && !bytes.Equal(echoed, body) {
		return fmt.Errorf("echo mismatch: %d bytes, want %d", len(echoed), len(body))
	}
	return nil
}

// httpLoad alternates GETs and POSTs until stop closes.
func httpLoad(addr string, stop chan struct{}, ok, failed *atomic.Int64, lastErr *atomic.Value) chan struct{} {
	done := make(chan struct{})
	body := bytes.Repeat([]byte("post-payload "), 300) // ~3.9 KiB
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				err = doHTTP(addr, "GET", "/hello", nil)
			} else {
				err = doHTTP(addr, "POST", "/upload", body)
			}
			if err != nil {
				failed.Add(1)
				lastErr.Store(err)
			} else {
				ok.Add(1)
			}
		}
	}()
	return done
}

// TestChaosRollingRestartZeroDisruption is the headline: transport-level
// faults (delays, read stalls, split writes) on every hop, an origin
// restart AND an edge restart under live HTTP load plus a relayed MQTT
// session — and the client sees zero failures. The MQTT session must
// survive the origin restart via DCR (§4.2).
func TestChaosRollingRestartZeroDisruption(t *testing.T) {
	transportOnly := faults.Scenario{
		Seed:             101,
		DialDelayRate:    0.3,
		DialDelayMax:     5 * time.Millisecond,
		WriteDelayRate:   0.15,
		WriteDelayMax:    2 * time.Millisecond,
		PartialWriteRate: 0.2,
		ReadStallRate:    0.15,
		ReadStallMax:     2 * time.Millisecond,
	}
	originDial := faults.NewInjector(transportOnly)
	edgeDial := faults.NewInjector(faults.Scenario(transportOnly))
	originAccept := faults.NewInjector(faults.Scenario{
		Seed:             202,
		PartialWriteRate: 0.2,
		ReadStallRate:    0.1,
		ReadStallMax:     2 * time.Millisecond,
	})
	brokerAccept := faults.NewInjector(faults.Scenario{
		Seed:          303,
		ReadStallRate: 0.1,
		ReadStallMax:  2 * time.Millisecond,
	})

	tp := buildChaosTopo(t,
		func(cfg *proxy.Config) { cfg.Faults = originDial; cfg.AcceptFaults = originAccept },
		func(cfg *proxy.Config) { cfg.Faults = edgeDial },
	)
	tp.broker.SetFaults(brokerAccept)

	addr := tp.edge.Current().Addr(proxy.VIPWeb)
	stop := make(chan struct{})
	var ok, failed atomic.Int64
	var lastErr atomic.Value
	done := httpLoad(addr, stop, &ok, &failed, &lastErr)

	// A relayed MQTT session rides through the origin restart.
	mconn, err := net.DialTimeout("tcp", tp.edge.Current().Addr(proxy.VIPMQTT), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	mc := mqtt.NewClient(mconn, "user-chaos", true)
	if _, err := mc.Connect(0, 5*time.Second); err != nil {
		t.Fatalf("mqtt connect: %v", err)
	}
	defer mc.Disconnect()
	if err := mc.Subscribe(5*time.Second, "notif/user-chaos"); err != nil {
		t.Fatal(err)
	}

	time.Sleep(100 * time.Millisecond) // let load ramp on gen 1

	if err := tp.origin.Restart(); err != nil {
		t.Fatalf("origin restart: %v", err)
	}
	// DCR: the relay must come back attached (same client conn) after the
	// draining origin solicits a re_connect.
	deadline := time.Now().Add(5 * time.Second)
	for !tp.broker.SessionAttached("user-chaos") && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-mc.Done():
		t.Fatal("MQTT client dropped during origin restart")
	default:
	}
	if n := tp.broker.Publish("notif/user-chaos", []byte("post-restart")); n != 1 {
		t.Fatalf("post-restart publish delivered to %d sessions", n)
	}
	select {
	case m := <-mc.Messages():
		if string(m.Payload) != "post-restart" {
			t.Fatalf("payload = %q", m.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-restart notification lost")
	}
	if err := mc.Ping(5 * time.Second); err != nil {
		t.Fatalf("post-restart ping: %v", err)
	}

	// MQTT disconnects cleanly before the edge restart: an edge restart
	// terminates long-lived client transports after the drain window by
	// design (the paper drains for 20 minutes; clients reconnect).
	mc.Disconnect()

	if err := tp.edge.Restart(); err != nil {
		t.Fatalf("edge restart: %v", err)
	}
	time.Sleep(300 * time.Millisecond) // load runs across the drain

	close(stop)
	<-done
	if f := failed.Load(); f != 0 {
		t.Fatalf("%d of %d requests failed under faults+restarts; last: %v",
			f, f+ok.Load(), lastErr.Load())
	}
	if ok.Load() < 20 {
		t.Fatalf("only %d requests completed — load loop starved", ok.Load())
	}

	// The schedules actually fired (otherwise this test proves nothing).
	for name, in := range map[string]*faults.Injector{
		"origin-dial": originDial, "edge-dial": edgeDial, "origin-accept": originAccept,
	} {
		if in.InjectedTotal() == 0 {
			t.Errorf("injector %s never fired", name)
		}
	}
	// Classification: the surviving generations saw no user-facing errors.
	edgeReg := tp.edge.Current().Metrics()
	for _, c := range []string{"edge.http.errors.no_origin", "edge.http.errors.open_stream", "edge.http.errors.upstream"} {
		if v := edgeReg.CounterValue(c); v != 0 {
			t.Errorf("%s = %d on the serving edge generation", c, v)
		}
	}
	if v := tp.origin.Current().Metrics().CounterValue("origin.http.ppr_exhausted"); v != 0 {
		t.Errorf("origin.http.ppr_exhausted = %d", v)
	}
}

// TestChaosDialFailuresAbsorbedByRetries injects hard faults — failed
// dials and RST-style aborts — on the origin→app-server hop. The §4.4
// retry path (now paced by faults.Backoff) must absorb every one: the
// client sees only 200s while origin.http.attempt_errors counts the
// carnage underneath.
func TestChaosDialFailuresAbsorbedByRetries(t *testing.T) {
	hard := faults.NewInjector(faults.Scenario{
		Seed:         404,
		DialFailRate: 0.25,
		AbortRate:    0.1,
		MaxOps:       8,
	})
	tp := buildChaosTopo(t, func(cfg *proxy.Config) {
		cfg.Faults = hard
		cfg.PPRRetries = 15
		cfg.RetryBackoff = faults.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Factor: 2}
	}, nil)

	addr := tp.edge.Current().Addr(proxy.VIPWeb)
	for i := 0; i < 150; i++ {
		if err := doHTTP(addr, "GET", "/r", nil); err != nil {
			t.Fatalf("request %d escaped the retry net: %v", i, err)
		}
	}
	if hard.Injected(faults.OpFailDial) == 0 {
		t.Fatal("no dial failures injected — scenario rates too low for the traffic")
	}
	if hard.Injected(faults.OpAbort) == 0 {
		t.Fatal("no aborts injected")
	}
	if tp.origin.Current().Metrics().CounterValue("origin.http.attempt_errors") == 0 {
		t.Fatal("origin absorbed zero attempt errors — faults never reached the retry path")
	}
}

// TestChaosUDPBoundedLoss covers the §3 UDP story: datagram drops on the
// client path are absorbed by bounded retransmission, across an edge
// restart (the UDP socket transfers; new flows land on the new
// generation). "Bounded" means every request completes within the retry
// budget — and the drop schedule demonstrably fired.
func TestChaosUDPBoundedLoss(t *testing.T) {
	dir := t.TempDir()
	gen := 0
	edge := &core.ProxySlot{
		SlotName: "edge-q",
		Path:     filepath.Join(dir, "edge-q.sock"),
		Build: func() *proxy.Proxy {
			gen++
			return proxy.New(proxy.Config{
				Name:          fmt.Sprintf("edge-q-g%d", gen),
				Role:          proxy.RoleEdge,
				Origins:       []string{"127.0.0.1:1"}, // static-only
				EnableQUIC:    true,
				DrainPeriod:   500 * time.Millisecond,
				StaticContent: map[string][]byte{"/video/seg1": []byte("segment-one")},
			}, nil)
		},
	}
	if err := edge.Start(); err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	serverAddr, err := net.ResolveUDPAddr("udp", edge.Current().Addr(proxy.VIPQUIC))
	if err != nil {
		t.Fatal(err)
	}

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	drops := faults.NewInjector(faults.Scenario{Seed: 505, DropRate: 0.25, MaxOps: 1024})
	fpc := drops.PacketConn(pc)

	const retryBudget = 10
	request := func(typ quicx.PacketType, id quicx.ConnID) error {
		raw := quicx.Marshal(quicx.Packet{Type: typ, Conn: id, Payload: []byte("/video/seg1")})
		buf := make([]byte, 64<<10)
		for attempt := 0; attempt < retryBudget; attempt++ {
			if _, err := fpc.WriteTo(raw, serverAddr); err != nil {
				return err
			}
			fpc.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
			n, _, err := fpc.ReadFrom(buf)
			if err != nil {
				continue // reply or request dropped: retransmit
			}
			p, err := quicx.Unmarshal(buf[:n])
			if err != nil || p.Conn != id {
				continue
			}
			if !bytes.HasSuffix(p.Payload, []byte("|segment-one")) {
				return fmt.Errorf("reply = %q", p.Payload)
			}
			return nil
		}
		return errors.New("request lost beyond the retry budget")
	}

	// Flow 1 on generation 1.
	if err := request(quicx.PktInitial, 1); err != nil {
		t.Fatalf("open flow 1: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := request(quicx.PktData, 1); err != nil {
			t.Fatalf("flow 1 send %d: %v", i, err)
		}
	}

	if err := edge.Restart(); err != nil {
		t.Fatalf("edge restart: %v", err)
	}

	// Fresh flows land on generation 2 over the same, never-closed socket.
	for id := quicx.ConnID(2); id < 7; id++ {
		if err := request(quicx.PktInitial, id); err != nil {
			t.Fatalf("post-restart flow %d: %v", id, err)
		}
		if err := request(quicx.PktData, id); err != nil {
			t.Fatalf("post-restart flow %d data: %v", id, err)
		}
	}

	if drops.Injected(faults.OpDropPacket) == 0 {
		t.Fatal("no datagrams dropped — the loss schedule never fired")
	}
}
