// Traced-release chaos tests: the release path runs under the obs tracer
// while a deterministic stall is injected into exactly one Fig. 5 step,
// and the resulting span tree is audited — every two-phase takeover phase
// present exactly once per hand-off, in order, with positive durations,
// and the stall attributed to the stalled step alone.
package faults_test

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"zdr/internal/core"
	"zdr/internal/obs"
	"zdr/internal/proxy"
)

// takeoverSteps is the receiver-side phase sequence of one two-phase
// hand-off: steps A–C transfer the sockets, takeover.prepare arms the new
// instance and sends PREPARE-ACK, takeover.commit awaits the sender's
// COMMIT, and steps E–F cover drain confirmation and health-check
// transfer. takeover.step.D only occurs against one-shot (v1) peers.
var takeoverSteps = []string{
	"takeover.step.A", "takeover.step.B", "takeover.step.C",
	"takeover.prepare", "takeover.commit",
	"takeover.step.E", "takeover.step.F",
}

func TestChaosTracedRollingRestartSpanTree(t *testing.T) {
	const stall = 120 * time.Millisecond
	const stalledStep = "takeover.step.C"

	tracer := obs.NewTracer("chaos")
	tracer.SetSpanStartHook(func(sp *obs.Span) {
		if sp.Name() == stalledStep {
			time.Sleep(stall) // charged to this span: the hook runs inside StartSpan
		}
	})
	tp := buildChaosTopo(t,
		func(cfg *proxy.Config) { cfg.Trace = tracer },
		func(cfg *proxy.Config) { cfg.Trace = tracer },
	)

	rep, err := core.Run(core.Plan{BatchFraction: 0.5, Trace: tracer},
		[]core.Restartable{tp.origin, tp.edge}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("release failed %d restarts", rep.Failed)
	}
	rr := rep.Release
	if rr == nil {
		t.Fatal("no release report")
	}

	// The forest has one release root (the receiver-side view, since the
	// receivers' spans join the release trace) plus one sender-rooted
	// takeover.serve trace per hand-off: the sender cannot join a trace
	// that only begins, on the receiver, after the sender's span started.
	var release *obs.SpanNode
	var serves []*obs.SpanNode
	for _, r := range rr.Spans {
		switch r.Name {
		case "release":
			release = r
		case "takeover.serve":
			serves = append(serves, r)
		default:
			t.Errorf("unexpected root span %q", r.Name)
		}
	}
	if release == nil {
		t.Fatalf("no release root among %d roots", len(rr.Spans))
	}
	if len(serves) != 2 {
		t.Fatalf("takeover.serve roots = %d, want 2 (origin + edge senders)", len(serves))
	}
	for _, s := range serves {
		names := map[string]int{}
		for _, c := range s.Children {
			names[c.Name]++
			if got := c.Attrs["side"]; got != "sender" {
				t.Errorf("takeover.serve child %s has side=%q, want sender", c.Name, got)
			}
		}
		if names["takeover.prepare"] != 1 || names["takeover.commit"] != 1 {
			t.Errorf("takeover.serve children = %v, want one takeover.prepare and one takeover.commit", names)
		}
	}

	var handoffs []*obs.SpanNode
	obs.Walk(rr.Spans, func(n *obs.SpanNode) {
		if n.EndUnixNano == 0 {
			t.Errorf("span %s never ended", n.Name)
		}
		if n.Duration() <= 0 {
			t.Errorf("span %s has non-positive duration %v", n.Name, n.Duration())
		}
		if n.Error != "" {
			t.Errorf("span %s errored: %s", n.Name, n.Error)
		}
		if n.Name == "takeover.handoff" {
			handoffs = append(handoffs, n)
		}
	})
	if len(handoffs) != 2 {
		t.Fatalf("hand-offs traced = %d, want 2 (origin + edge)", len(handoffs))
	}

	for _, hand := range handoffs {
		inst := hand.Attrs["instance"]
		// Every step exactly once per hand-off.
		count := map[string]int{}
		var steps []*obs.SpanNode
		for _, c := range hand.Children {
			count[c.Name]++
			for _, s := range takeoverSteps {
				if c.Name == s {
					steps = append(steps, c)
				}
			}
		}
		for _, s := range takeoverSteps {
			if count[s] != 1 {
				t.Errorf("%s: step %s appeared %d times, want exactly 1", inst, s, count[s])
			}
		}
		// v2↔v2 hand-offs run the two-phase confirmation; the one-shot
		// step D must not appear.
		if count["takeover.step.D"] != 0 {
			t.Errorf("%s: one-shot step D appeared %d times on a two-phase hand-off", inst, count["takeover.step.D"])
		}
		// The old generation's drain joins the hand-off trace as a child
		// (its context crossed the takeover socket in the ack frame).
		if count["proxy.drain"] != 1 {
			t.Errorf("%s: old generation's proxy.drain not stitched into the hand-off (children %v)", inst, count)
		}
		// In order A → F by start time (BuildTree sorts children by start).
		for i := 1; i < len(steps); i++ {
			if steps[i].StartUnixNano < steps[i-1].StartUnixNano {
				t.Errorf("%s: %s started before %s", inst, steps[i].Name, steps[i-1].Name)
			}
		}
		// The stall landed on the stalled step and nowhere else.
		for _, s := range steps {
			if s.Name == stalledStep {
				if s.Duration() < stall {
					t.Errorf("%s: %s duration %v, want >= injected stall %v", inst, s.Name, s.Duration(), stall)
				}
			} else if s.Duration() >= stall {
				t.Errorf("%s: stall bled into %s (duration %v)", inst, s.Name, s.Duration())
			}
		}
	}

	// Phase accounting reflects the two hand-offs. takeover.prepare and
	// takeover.commit are recorded on BOTH sides of the socket (receiver
	// and sender views), so they count 4 across the release.
	for _, s := range takeoverSteps {
		want := int64(2)
		if s == "takeover.prepare" || s == "takeover.commit" {
			want = 4
		}
		if got := rr.PhaseCount[s]; got != want {
			t.Errorf("PhaseCount[%s] = %d, want %d", s, got, want)
		}
	}
	if got := rr.PhaseCount["takeover.step.D"]; got != 0 {
		t.Errorf("PhaseCount[takeover.step.D] = %d, want 0 on an all-v2 release", got)
	}
	if rr.Phase(stalledStep) < 2*stall {
		t.Errorf("Phase(%s) = %v, want >= %v across both hand-offs", stalledStep, rr.Phase(stalledStep), 2*stall)
	}
}

// TestChaosAdminHealthzAcrossTakeover drives the /healthz contract
// through a real Socket Takeover: the serving generation answers 200,
// flips to 503 the moment the hand-off puts it into drain, and the new
// generation answers 200 on its own admin endpoint.
func TestChaosAdminHealthzAcrossTakeover(t *testing.T) {
	tp := buildChaosTopo(t, nil, nil)

	adminFor := func(p *proxy.Proxy) (*obs.AdminServer, string) {
		t.Helper()
		a := &obs.Admin{
			Service:      p.Name(),
			Registry:     p.Metrics(),
			Tracer:       p.Tracer(),
			Draining:     p.Draining,
			ReleaseState: p.ReleaseState,
		}
		srv, err := a.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv, srv.Addr()
	}
	healthz := func(addr string) int {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	oldGen := tp.origin.Current()
	_, oldAdmin := adminFor(oldGen)
	if code := healthz(oldAdmin); code != 200 {
		t.Fatalf("serving generation /healthz = %d, want 200", code)
	}

	if err := tp.origin.Restart(); err != nil {
		t.Fatal(err)
	}
	// The hand-off flipped the old generation into drain before Restart
	// returned (step E confirms it), so its admin endpoint must now 503.
	if code := healthz(oldAdmin); code != 503 {
		t.Fatalf("draining generation /healthz = %d, want 503", code)
	}
	newGen := tp.origin.Current()
	if newGen == oldGen {
		t.Fatal("restart did not replace the generation")
	}
	_, newAdmin := adminFor(newGen)
	if code := healthz(newAdmin); code != 200 {
		t.Fatalf("new generation /healthz = %d, want 200", code)
	}

	// /metrics on the new generation is valid exposition text with the
	// takeover recorded.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", newAdmin))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := "zdr_proxy_takeovers 1"; !containsLine(string(body), want) {
		t.Fatalf("/metrics missing %q:\n%s", want, body)
	}
}

func containsLine(body, line string) bool {
	for len(body) > 0 {
		i := 0
		for i < len(body) && body[i] != '\n' {
			i++
		}
		if body[:i] == line {
			return true
		}
		if i == len(body) {
			break
		}
		body = body[i+1:]
	}
	return false
}
