// Drain-undo chaos: the acceptance scenario for the post-commit recovery
// window (ProtoDrainUndo). The receiver is killed at each instant between
// COMMIT and READY — failed readiness gate, READY frame lost on the wire,
// silent wedge past the lease timeout — under live HTTP load, and every
// time the release must be a non-event: the sender un-drains from its
// retained FD dups and keeps serving the same generation, no client sees
// a reset, no RestartFresh is needed, the FD ledger returns to baseline,
// and the trace shows a takeover.undo span carrying the retained-FD
// count.
package faults_test

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"zdr/internal/netx"
	"zdr/internal/obs"
	"zdr/internal/proxy"
	"zdr/internal/takeover"
)

// frameReady mirrors the wire protocol's READY frame kind (msgReady). The
// injection keys on the first byte of outgoing frames; drift fails the
// "injection fired" assertion rather than silently passing.
const frameReady = 8

const (
	gateHealthy = iota // readiness gate passes
	gateFailing        // receiver death instant A: gate reports unhealthy
	gateWedged         // receiver death instant C: gate hangs past the lease
)

func TestChaosReceiverDeathPostCommit(t *testing.T) {
	tracer := obs.NewTracer("undo-chaos")
	var gateMode atomic.Int64
	tp := buildChaosTopo(t, nil, func(cfg *proxy.Config) {
		cfg.Trace = tracer
		cfg.TakeoverReadyTimeout = 250 * time.Millisecond
		cfg.ReadyGate = func() error {
			switch gateMode.Load() {
			case gateFailing:
				return errors.New("injected unhealthy receiver")
			case gateWedged:
				time.Sleep(1200 * time.Millisecond) // sender's lease expires underneath
			}
			return nil
		}
	})
	addr := tp.edge.Current().Addr(proxy.VIPWeb)

	for i := 0; i < 3; i++ {
		if err := doHTTP(addr, "GET", "/warm", nil); err != nil {
			t.Fatalf("warm-up request %d: %v", i, err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	baseline, err := netx.OpenFDCount()
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var ok, failed atomic.Int64
	var lastErr atomic.Value
	done := httpLoad(addr, stop, &ok, &failed, &lastErr)

	oldGen := tp.edge.Current()
	oldGenN := tp.edge.Generation()
	tp.edge.AbortRetries = -1 // observe each undo individually, no auto-retry

	// expectUndo restarts the edge, expecting the injected post-commit
	// death to undo the hand-off without disturbing the serving
	// generation.
	expectUndo := func(instant string, wantUndos int64) {
		t.Helper()
		err := tp.edge.Restart()
		if err == nil {
			t.Fatalf("%s: restart succeeded past a dead receiver", instant)
		}
		if !errors.Is(err, takeover.ErrUndone) {
			t.Fatalf("%s: restart error not classified as post-commit undo: %v", instant, err)
		}
		if errors.Is(err, takeover.ErrAborted) {
			t.Fatalf("%s: undo misclassified as pre-commit abort: %v", instant, err)
		}
		if cur := tp.edge.Current(); cur != oldGen {
			t.Fatalf("%s: undone restart replaced the serving generation", instant)
		}
		if got := tp.edge.Generation(); got != oldGenN {
			t.Fatalf("%s: generation advanced to %d across an undo", instant, got)
		}
		// The sender's undo settles asynchronously (its lease breaks when
		// the receiver hangs up); wait for the un-drain to complete.
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if oldGen.Metrics().CounterValue("proxy.takeover_undos") == wantUndos && !oldGen.Draining() {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if got := oldGen.Metrics().CounterValue("proxy.takeover_undos"); got != wantUndos {
			t.Fatalf("%s: proxy.takeover_undos = %d, want %d", instant, got, wantUndos)
		}
		if oldGen.Draining() {
			t.Fatalf("%s: old generation still draining after the undo", instant)
		}
		// The un-drained generation answers on the very same sockets.
		for i := 0; i < 3; i++ {
			if err := doHTTP(addr, "GET", fmt.Sprintf("/%s-%d", instant, i), nil); err != nil {
				t.Fatalf("%s: request %d after undo: %v", instant, i, err)
			}
		}
	}

	// Instant A — COMMIT landed, the receiver's readiness gate reports
	// unhealthy: the new generation steps down before READY.
	gateMode.Store(gateFailing)
	expectUndo("gate-failure", 1)

	// Instant B — the gate passes but the READY frame itself is lost (the
	// receiver dies mid-send at the worst possible byte).
	gateMode.Store(gateHealthy)
	var injected atomic.Int64
	netx.SetFDHook(func(op string, data []byte, fds []int) error {
		if op == "write" && len(data) > 0 && data[0] == frameReady {
			injected.Add(1)
			return errors.New("injected receiver death at ready")
		}
		return nil
	})
	expectUndo("ready-lost", 2)
	netx.SetFDHook(nil)
	if injected.Load() == 0 {
		t.Fatal("ready-frame injection never fired — wire constant drift?")
	}

	// Instant C — the receiver wedges silently: commits, never confirms,
	// never dies. The sender's lease (TakeoverReadyTimeout) expires.
	gateMode.Store(gateWedged)
	expectUndo("silent-wedge", 3)
	gateMode.Store(gateHealthy)

	if got := oldGen.Metrics().CounterValue("proxy.takeover_commits"); got != 3 {
		t.Errorf("proxy.takeover_commits = %d, want 3 (every instant passed its commit point)", got)
	}

	// Zero client-visible disruption across all three undone releases.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	<-done
	if f := failed.Load(); f != 0 {
		t.Fatalf("%d of %d requests failed across the undone takeovers; last: %v",
			f, f+ok.Load(), lastErr.Load())
	}
	if ok.Load() < 20 {
		t.Fatalf("only %d requests completed — load loop starved", ok.Load())
	}

	// Every descriptor the three recovery windows created — retained dups,
	// SCM_RIGHTS copies, the dead receivers' adopted sets — is closed.
	if got := settleFDCount(t, baseline); got != baseline {
		t.Fatalf("fd count after three undos = %d, want baseline %d", got, baseline)
	}

	// With the faults cleared, the same slot releases normally: drain-undo
	// failures never escalate to RestartFresh.
	if err := tp.edge.Restart(); err != nil {
		t.Fatalf("healthy restart after three undos: %v", err)
	}
	if tp.edge.Current() == oldGen || tp.edge.Generation() != oldGenN+1 {
		t.Fatal("healthy restart did not promote a new generation")
	}
	for i := 0; i < 3; i++ {
		if err := doHTTP(addr, "GET", "/post-release", nil); err != nil {
			t.Fatalf("request %d on the promoted generation: %v", i, err)
		}
	}
	if got := tp.edge.State().Phase; got != "serving" {
		t.Errorf("slot phase after release = %q, want \"serving\"", got)
	}

	// Trace audit: one takeover.undo span per instant, each carrying the
	// retained-FD count (edge binds web+mqtt+health = 3 VIPs) and a cause.
	undoSpans := 0
	for _, r := range tracer.Finished() {
		if r.Name != obs.SpanTakeoverUndo {
			continue
		}
		undoSpans++
		if r.Attrs["retained_fds"] != strconv.Itoa(3) {
			t.Errorf("takeover.undo retained_fds = %q, want \"3\"", r.Attrs["retained_fds"])
		}
		if r.Attrs["cause"] == "" {
			t.Error("takeover.undo span has no cause attr")
		}
	}
	if undoSpans != 3 {
		t.Errorf("takeover.undo spans = %d, want 3 (one per instant)", undoSpans)
	}
}
