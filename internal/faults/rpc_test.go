package faults

import (
	"errors"
	"testing"
	"time"
)

// TestRPCInjectorDeterministic pins that the control-plane schedule is a
// pure function of (Scenario, call index): two injectors with the same
// scenario inject drops on exactly the same calls.
func TestRPCInjectorDeterministic(t *testing.T) {
	sc := Scenario{Seed: 42, RPCDropRate: 0.3, RPCDelayRate: 0.2, RPCDelayMax: time.Microsecond}
	outcomes := func() []bool {
		in := NewInjector(sc)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.RPC("probe") != nil)
		}
		return out
	}
	a, b := outcomes(), outcomes()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: schedules diverge", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("0.3 drop rate over 64 calls injected nothing")
	}
}

// TestRPCInjectorErrorsAreInjected pins the error classification: every
// dropped RPC is an ErrInjected so retry loops can tell chaos from real
// faults.
func TestRPCInjectorErrorsAreInjected(t *testing.T) {
	in := NewInjector(Scenario{Seed: 7, RPCDropRate: 1})
	err := in.RPC("restart")
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if got := in.Injected(OpDropRPC); got != 1 {
		t.Fatalf("OpDropRPC count = %d, want 1", got)
	}
}

// TestRPCPartitionSwitch pins the sever/heal behaviour fleet chaos tests
// lean on: while partitioned every call fails regardless of rates, and a
// heal restores the channel.
func TestRPCPartitionSwitch(t *testing.T) {
	in := NewInjector(Scenario{Seed: 1}) // zero rates: clean channel
	if err := in.RPC("health"); err != nil {
		t.Fatalf("clean channel injected: %v", err)
	}
	in.SetPartitioned(true)
	if !in.Partitioned() {
		t.Fatal("Partitioned() = false after SetPartitioned(true)")
	}
	for i := 0; i < 8; i++ {
		if err := in.RPC("health"); !errors.Is(err, ErrInjected) {
			t.Fatalf("partitioned call %d succeeded (err=%v)", i, err)
		}
	}
	in.SetPartitioned(false)
	if err := in.RPC("health"); err != nil {
		t.Fatalf("healed channel injected: %v", err)
	}
}

// TestRPCNilInjector: the nil pass-through contract extends to the
// control plane.
func TestRPCNilInjector(t *testing.T) {
	var in *Injector
	if err := in.RPC("anything"); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	in.SetPartitioned(true) // must not panic
	if in.Partitioned() {
		t.Fatal("nil injector reports partitioned")
	}
}
