package faults

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// chaoticScenario exercises every schedule dimension.
func chaoticScenario(seed uint64) Scenario {
	return Scenario{
		Seed:             seed,
		DialFailRate:     0.2,
		DialDelayRate:    0.3,
		DialDelayMax:     5 * time.Millisecond,
		WriteDelayRate:   0.25,
		WriteDelayMax:    3 * time.Millisecond,
		PartialWriteRate: 0.25,
		ReadStallRate:    0.25,
		ReadStallMax:     3 * time.Millisecond,
		AbortRate:        0.05,
		AbortMinOps:      2,
		DropRate:         0.3,
		MaxOps:           32,
	}
}

// TestScenarioDeterminism is the acceptance criterion: the same Scenario
// seed reproduces byte-identical fault schedules across two independent
// runs.
func TestScenarioDeterminism(t *testing.T) {
	dump := func(sc Scenario) string {
		var b strings.Builder
		for conn := uint64(0); conn < 200; conn++ {
			b.WriteString(sc.Plan(conn).String())
		}
		return b.String()
	}
	a := dump(chaoticScenario(42))
	b := dump(chaoticScenario(42))
	if a != b {
		t.Fatal("same seed produced different schedules")
	}
	if c := dump(chaoticScenario(43)); c == a {
		t.Fatal("different seeds produced identical schedules")
	}
	// The dump must actually contain faults of every stream class, or
	// the comparison proves nothing.
	for _, want := range []string{"dialfail=true", "stall-read", "partial-write", "abort", "drop", "delay"} {
		if !strings.Contains(a, want) {
			t.Fatalf("schedule dump has no %q fault:\n%s", want, a[:min(len(a), 2000)])
		}
	}
}

// TestInjectorPlanSequence: an injector assigns consecutive connection
// indices, so two injectors with the same scenario wrap identical
// schedules in identical order.
func TestInjectorPlanSequence(t *testing.T) {
	a, b := NewInjector(chaoticScenario(7)), NewInjector(chaoticScenario(7))
	for i := 0; i < 50; i++ {
		if pa, pb := a.nextPlan(), b.nextPlan(); pa.String() != pb.String() {
			t.Fatalf("plan %d diverged", i)
		}
	}
}

// TestNilInjectorPassThrough: all methods are nil-receiver safe no-ops.
func TestNilInjectorPassThrough(t *testing.T) {
	var in *Injector
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if got := in.Listener(ln); got != ln {
		t.Fatal("nil injector wrapped a listener")
	}
	go func() {
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
	}()
	c, err := in.Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, wrapped := c.(*conn); wrapped {
		t.Fatal("nil injector wrapped a dialed conn")
	}
	c.Close()
	if in.Injected(OpAbort) != 0 || in.InjectedTotal() != 0 {
		t.Fatal("nil injector counted faults")
	}
}

// TestPartialWritePreservesBytes: a split write still delivers every
// byte, in order (the io.Writer contract holds).
func TestPartialWritePreservesBytes(t *testing.T) {
	in := NewInjector(Scenario{Seed: 1, PartialWriteRate: 1, MaxOps: 8})
	client, server := net.Pipe()
	defer server.Close()
	fc := in.Conn(client)
	payload := bytes.Repeat([]byte("zero-downtime-release "), 200)
	var got []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1024)
		for len(got) < len(payload) {
			n, err := server.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				return
			}
		}
	}()
	if n, err := fc.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	<-done
	if !bytes.Equal(got, payload) {
		t.Fatal("split write corrupted the byte stream")
	}
	if in.Injected(OpPartialWrite) == 0 {
		t.Fatal("no partial write recorded")
	}
}

// TestAbortIsRSTStyle: an abort closes the transport hard; the peer sees
// an error (reset or EOF), and the local op fails with ErrInjected.
func TestAbortIsRSTStyle(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	peerErr := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			peerErr <- err
			return
		}
		defer c.Close()
		c.Write([]byte("hello"))
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, err = io.ReadAll(c)
		peerErr <- err
	}()
	in := NewInjector(Scenario{Seed: 3, AbortRate: 1, MaxOps: 4})
	c, err := in.Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read error = %v, want ErrInjected", err)
	}
	if err := <-peerErr; err == nil {
		t.Fatal("peer saw a clean EOF-less stream after an abort")
	}
	if in.Injected(OpAbort) == 0 {
		t.Fatal("no abort recorded")
	}
}

// TestDialFail: a scheduled dial failure fires without touching the
// network, wrapped in ErrInjected.
func TestDialFail(t *testing.T) {
	in := NewInjector(Scenario{Seed: 11, DialFailRate: 1})
	if _, err := in.Dial("tcp", "127.0.0.1:1", time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial error = %v, want ErrInjected", err)
	}
	if in.Injected(OpFailDial) != 1 {
		t.Fatal("dial failure not counted")
	}
}

// TestPacketDrops: write-side drops swallow datagrams; the loss is
// bounded by the schedule, never an error.
func TestPacketDrops(t *testing.T) {
	serverPC, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverPC.Close()
	clientPC, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer clientPC.Close()

	var received atomic.Int64
	go func() {
		buf := make([]byte, 64)
		for {
			if _, _, err := serverPC.ReadFrom(buf); err != nil {
				return
			}
			received.Add(1)
		}
	}()

	in := NewInjector(Scenario{Seed: 5, DropRate: 0.5, MaxOps: 40})
	fpc := in.PacketConn(clientPC)
	for i := 0; i < 40; i++ {
		if _, err := fpc.WriteTo([]byte("ping"), serverPC.LocalAddr()); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
	}
	dropped := int64(in.Injected(OpDropPacket))
	if dropped == 0 || dropped == 40 {
		t.Fatalf("dropped %d of 40, want strictly partial loss", dropped)
	}
	deadline := time.Now().Add(2 * time.Second)
	for received.Load() < 40-dropped && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := received.Load(); got != 40-dropped {
		t.Fatalf("received %d, want %d (40 sent, %d dropped)", got, 40-dropped, dropped)
	}
}

// TestBackoffDelayShape: delays grow geometrically, cap at Max, and are
// deterministic per (Backoff, attempt).
func TestBackoffDelayShape(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Delay(i); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	j := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5, Seed: 9}
	for i := 0; i < 6; i++ {
		d1, d2 := j.Delay(i), j.Delay(i)
		if d1 != d2 {
			t.Fatalf("jittered Delay(%d) not deterministic: %v vs %v", i, d1, d2)
		}
		base := Backoff{Base: j.Base, Max: j.Max, Factor: j.Factor}.Delay(i)
		lo, hi := base*3/4, base*5/4
		if d1 < lo || d1 > hi {
			t.Fatalf("jittered Delay(%d) = %v outside [%v, %v]", i, d1, lo, hi)
		}
	}
}

// TestBackoffRetry: retries until success; Permanent short-circuits; ctx
// cancellation interrupts the sleep.
func TestBackoffRetry(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Attempts: 10}
	calls := 0
	err := b.Retry(context.Background(), func() error {
		calls++
		if calls < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("Retry = %v after %d calls", err, calls)
	}

	calls = 0
	sentinel := errors.New("protocol violation")
	err = b.Retry(context.Background(), func() error {
		calls++
		return Permanent(sentinel)
	})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("Permanent: err=%v calls=%d", err, calls)
	}

	calls = 0
	exhausted := b.Retry(context.Background(), func() error {
		calls++
		return errors.New("always")
	})
	if exhausted == nil || calls != 10 {
		t.Fatalf("exhaustion: err=%v calls=%d", exhausted, calls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	slow := Backoff{Base: time.Minute, Attempts: 5}
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err = slow.Retry(ctx, func() error { return errors.New("fail") })
	if err == nil {
		t.Fatal("cancelled Retry returned nil")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Retry ignored context cancellation")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
