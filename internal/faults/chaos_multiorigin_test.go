// Multi-Origin DCR chaos: the §4.2 requirement the single-origin suite
// cannot exercise — when the Origin relaying an MQTT session drains for a
// restart, the Edge must re_connect through a DIFFERENT healthy Origin
// (the draining instance's address is excluded, and after a Socket
// Takeover its successor shares that address). The session must survive
// with zero client-visible disruption while transport faults run on every
// hop.
package faults_test

import (
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"zdr/internal/appserver"
	"zdr/internal/core"
	"zdr/internal/faults"
	"zdr/internal/mqtt"
	"zdr/internal/proxy"
)

// multiOriginTopo is a deployment with one Edge fanning out to two
// independently restartable Origins sharing one broker + app tier.
type multiOriginTopo struct {
	broker  *mqtt.Broker
	origins [2]*core.ProxySlot
	edge    *core.ProxySlot
}

func buildMultiOriginTopo(t *testing.T, originCfg, edgeCfg func(*proxy.Config)) *multiOriginTopo {
	t.Helper()
	dir := t.TempDir()

	brokerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	broker := mqtt.NewBroker("broker", nil)
	go broker.Serve(brokerLn)
	t.Cleanup(func() { brokerLn.Close(); broker.Close() })

	app := &core.AppServerSlot{
		SlotName: "as",
		Build: func() *appserver.Server {
			return appserver.New(appserver.Config{Name: "as", DrainPeriod: 100 * time.Millisecond}, nil)
		},
	}
	if err := app.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)

	tp := &multiOriginTopo{broker: broker}
	tunnels := make([]string, 0, 2)
	for i := range tp.origins {
		i := i
		gen := 0
		slot := &core.ProxySlot{
			SlotName: fmt.Sprintf("origin-%c", 'a'+i),
			Path:     filepath.Join(dir, fmt.Sprintf("origin-%c.sock", 'a'+i)),
			Build: func() *proxy.Proxy {
				gen++
				cfg := proxy.Config{
					Name:        fmt.Sprintf("origin-%c-g%d", 'a'+i, gen),
					Role:        proxy.RoleOrigin,
					AppServers:  []string{app.Addr()},
					Brokers:     []string{brokerLn.Addr().String()},
					DrainPeriod: 400 * time.Millisecond,
				}
				if originCfg != nil {
					originCfg(&cfg)
				}
				return proxy.New(cfg, nil)
			},
		}
		if err := slot.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(slot.Close)
		tp.origins[i] = slot
		tunnels = append(tunnels, slot.Current().Addr(proxy.VIPTunnel))
	}

	edgeGen := 0
	tp.edge = &core.ProxySlot{
		SlotName: "edge",
		Path:     filepath.Join(dir, "edge.sock"),
		Build: func() *proxy.Proxy {
			edgeGen++
			cfg := proxy.Config{
				Name:        fmt.Sprintf("edge-g%d", edgeGen),
				Role:        proxy.RoleEdge,
				Origins:     tunnels,
				DrainPeriod: 400 * time.Millisecond,
			}
			if edgeCfg != nil {
				edgeCfg(&cfg)
			}
			return proxy.New(cfg, nil)
		},
	}
	if err := tp.edge.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tp.edge.Close)
	return tp
}

func TestChaosMultiOriginDCRReconnect(t *testing.T) {
	transport := faults.Scenario{
		Seed:             606,
		DialDelayRate:    0.3,
		DialDelayMax:     5 * time.Millisecond,
		WriteDelayRate:   0.15,
		WriteDelayMax:    2 * time.Millisecond,
		PartialWriteRate: 0.2,
		ReadStallRate:    0.15,
		ReadStallMax:     2 * time.Millisecond,
	}
	originDial := faults.NewInjector(transport)
	edgeDial := faults.NewInjector(faults.Scenario(transport))
	tp := buildMultiOriginTopo(t,
		func(cfg *proxy.Config) { cfg.Faults = originDial },
		func(cfg *proxy.Config) { cfg.Faults = edgeDial },
	)

	// A persistent MQTT session relayed Edge → some Origin → broker.
	mconn, err := net.DialTimeout("tcp", tp.edge.Current().Addr(proxy.VIPMQTT), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	mc := mqtt.NewClient(mconn, "user-dcr-multi", true)
	if _, err := mc.Connect(0, 5*time.Second); err != nil {
		t.Fatalf("mqtt connect: %v", err)
	}
	defer mc.Disconnect()
	if err := mc.Subscribe(5*time.Second, "notif/user-dcr-multi"); err != nil {
		t.Fatal(err)
	}

	// Find which Origin carries the relay; the other must pick it up.
	relayIdx := -1
	deadline := time.Now().Add(3 * time.Second)
	for relayIdx < 0 && time.Now().Before(deadline) {
		for i, o := range tp.origins {
			if o.Current().Metrics().CounterValue("origin.mqtt.relays") > 0 {
				relayIdx = i
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if relayIdx < 0 {
		t.Fatal("no origin reports the MQTT relay")
	}
	relaying, other := tp.origins[relayIdx], tp.origins[1-relayIdx]

	// Restart the relaying Origin. Its drain solicits re_connect; the
	// Edge must route the resume around the draining instance — and
	// around its successor, which inherits the same tunnel address via
	// Socket Takeover.
	if err := relaying.Restart(); err != nil {
		t.Fatalf("restart of relaying origin: %v", err)
	}

	deadline = time.Now().Add(5 * time.Second)
	for !tp.broker.SessionAttached("user-dcr-multi") && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !tp.broker.SessionAttached("user-dcr-multi") {
		t.Fatal("broker session never re-attached after the relaying origin drained")
	}
	select {
	case <-mc.Done():
		t.Fatal("MQTT client dropped during the origin restart")
	default:
	}

	// The resume went through the OTHER Origin — §4.2's "another healthy
	// LB" — not through the restarted slot's new generation.
	if got := other.Current().Metrics().CounterValue("origin.mqtt.resume_ack"); got < 1 {
		t.Errorf("other origin origin.mqtt.resume_ack = %d, want >= 1", got)
	}
	if got := relaying.Current().Metrics().CounterValue("origin.mqtt.resume_ack"); got != 0 {
		t.Errorf("restarted origin's new generation handled %d resumes; the draining address must be excluded", got)
	}
	if got := other.Current().Metrics().CounterValue("origin.mqtt.resume_refused"); got != 0 {
		t.Errorf("origin.mqtt.resume_refused = %d, want 0", got)
	}
	if got := tp.edge.Current().Metrics().CounterValue("edge.mqtt.reconnect.ack"); got < 1 {
		t.Errorf("edge.mqtt.reconnect.ack = %d, want >= 1", got)
	}

	// The session works end-to-end through its new path.
	if n := tp.broker.Publish("notif/user-dcr-multi", []byte("via-other-origin")); n != 1 {
		t.Fatalf("post-restart publish delivered to %d sessions, want 1", n)
	}
	select {
	case m := <-mc.Messages():
		if string(m.Payload) != "via-other-origin" {
			t.Fatalf("payload = %q", m.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-restart notification lost")
	}
	if err := mc.Ping(5 * time.Second); err != nil {
		t.Fatalf("post-restart ping: %v", err)
	}

	// The fault schedules demonstrably ran.
	if originDial.InjectedTotal() == 0 {
		t.Error("origin-side injector never fired")
	}
	if edgeDial.InjectedTotal() == 0 {
		t.Error("edge-side injector never fired")
	}
}
