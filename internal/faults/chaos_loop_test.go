package faults_test

import (
	"bufio"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zdr/internal/core"
	"zdr/internal/faults"
	"zdr/internal/http1"
	"zdr/internal/netx"
	"zdr/internal/proxy"
)

// TestChaosLoopEdgeRestartZeroDisruption drives an event-loop Edge
// (idle connections parked in epoll, not goroutines) through a Socket
// Takeover restart while transport faults run on the upstream dial path.
// Each generation owns its own EventLoop — epoll interest is per-process
// state and must NOT survive the hand-off; the new generation re-registers
// accepted fds in its own loop. Fresh-connection load sees zero failures,
// and keep-alive connections parked on the old generation keep serving
// until its drain ends.
func TestChaosLoopEdgeRestartZeroDisruption(t *testing.T) {
	dialFaults := faults.NewInjector(faults.Scenario{
		Seed:             515,
		DialDelayRate:    0.3,
		DialDelayMax:     5 * time.Millisecond,
		WriteDelayRate:   0.15,
		WriteDelayMax:    2 * time.Millisecond,
		PartialWriteRate: 0.2,
		ReadStallRate:    0.15,
		ReadStallMax:     2 * time.Millisecond,
	})

	// Each proxy generation gets a fresh loop; close them all at the end.
	var loopsMu sync.Mutex
	var loops []*netx.EventLoop
	t.Cleanup(func() {
		loopsMu.Lock()
		defer loopsMu.Unlock()
		for _, l := range loops {
			l.Close()
		}
	})
	newLoop := func() *netx.EventLoop {
		loop, err := netx.NewEventLoop(netx.EventLoopConfig{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		loopsMu.Lock()
		loops = append(loops, loop)
		loopsMu.Unlock()
		return loop
	}

	tp := buildChaosTopo(t, nil, func(cfg *proxy.Config) {
		cfg.Faults = dialFaults
		cfg.ConnLoop = newLoop()
	})

	addr := tp.edge.Current().Addr(proxy.VIPWeb)
	oldGen := tp.edge.Current()
	loopsMu.Lock()
	oldLoop := loops[len(loops)-1]
	loopsMu.Unlock()

	// Park keep-alive conns on generation 1's loop.
	const parked = 24
	parkedConns := make([]net.Conn, 0, parked)
	for i := 0; i < parked; i++ {
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		parkedConns = append(parkedConns, c)
	}
	deadline := time.Now().Add(2 * time.Second)
	for oldLoop.Watched() < parked {
		if time.Now().After(deadline) {
			t.Fatalf("gen-1 loop Watched = %d, want %d", oldLoop.Watched(), parked)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fresh-connection load across the restart.
	stop := make(chan struct{})
	var ok, failed atomic.Int64
	var lastErr atomic.Value
	done := httpLoad(addr, stop, &ok, &failed, &lastErr)
	time.Sleep(100 * time.Millisecond)

	if err := tp.edge.Restart(); err != nil {
		t.Fatalf("edge restart: %v", err)
	}

	// While gen 1 drains, its parked conns still serve from its loop.
	for i, c := range parkedConns {
		if _, err := http1.WriteRequest(c, http1.NewRequest("GET", "/cached", nil, 0)); err != nil {
			t.Fatalf("parked conn %d write during drain: %v", i, err)
		}
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		resp, err := http1.ReadResponse(bufio.NewReader(c))
		if err != nil {
			t.Fatalf("parked conn %d read during drain: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("parked conn %d status %d during drain", i, resp.StatusCode)
		}
		http1.ReadFullBody(resp.Body)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	<-done
	if f := failed.Load(); f != 0 {
		t.Fatalf("%d of %d fresh-conn requests failed across loop-mode restart; last: %v",
			f, f+ok.Load(), lastErr.Load())
	}
	if ok.Load() < 20 {
		t.Fatalf("only %d requests completed — load loop starved", ok.Load())
	}
	if dialFaults.InjectedTotal() == 0 {
		t.Fatal("fault schedule never fired")
	}

	// New generation's loop carries its connections; gen 1's parked set is
	// reaped once the drain window ends (terminate closes them).
	newGen := tp.edge.Current()
	if newGen == oldGen {
		t.Fatal("restart did not swap generations")
	}
	deadline = time.Now().Add(3 * time.Second)
	for oldGen.Metrics().GaugeValue("proxy.loop.parked") > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("gen-1 parked gauge stuck at %d after drain",
				oldGen.Metrics().GaugeValue("proxy.loop.parked"))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the surviving generation parks new keep-alive conns in ITS loop.
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loopsMu.Lock()
	newLoopRef := loops[len(loops)-1]
	loopsMu.Unlock()
	deadline = time.Now().Add(2 * time.Second)
	for newLoopRef.Watched() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gen-2 loop never parked the new connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosLoopFaultWrappedConnsFallBack pins the loop-mode escape hatch:
// accept-side fault wrappers hide the raw fd (not a syscall.Conn), so
// those connections must fall back to goroutine-per-conn service instead
// of being mis-parked — and still serve correctly under read stalls.
func TestChaosLoopFaultWrappedConnsFallBack(t *testing.T) {
	acceptFaults := faults.NewInjector(faults.Scenario{
		Seed:             616,
		PartialWriteRate: 0.3,
		ReadStallRate:    0.2,
		ReadStallMax:     2 * time.Millisecond,
	})
	loop, err := netx.NewEventLoop(netx.EventLoopConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()

	dir := t.TempDir()
	gen := 0
	edge := &core.ProxySlot{
		SlotName: "edge",
		Path:     filepath.Join(dir, "edge-loop-fb.sock"),
		Build: func() *proxy.Proxy {
			gen++
			return proxy.New(proxy.Config{
				Name:          fmt.Sprintf("edge-fb-g%d", gen),
				Role:          proxy.RoleEdge,
				DrainPeriod:   100 * time.Millisecond,
				StaticContent: map[string][]byte{"/cached": []byte("dsr-bytes")},
				ConnLoop:      loop,
				AcceptFaults:  acceptFaults,
			}, nil)
		},
	}
	if err := edge.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(edge.Close)

	addr := edge.Current().Addr(proxy.VIPWeb)
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for i := 0; i < 5; i++ {
		if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/cached", nil, 0)); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		resp, err := http1.ReadResponse(br)
		if err != nil {
			t.Fatalf("request %d on fault-wrapped conn: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		http1.ReadFullBody(resp.Body)
		time.Sleep(10 * time.Millisecond)
	}
	// The wrapped conn never entered the loop.
	if n := loop.Watched(); n != 0 {
		t.Fatalf("fault-wrapped conn was parked in the loop (Watched = %d)", n)
	}
	if got := edge.Current().Metrics().GaugeValue("proxy.loop.parked"); got != 0 {
		t.Fatalf("parked gauge = %d for fault-wrapped conns", got)
	}
	if acceptFaults.InjectedTotal() == 0 {
		t.Fatal("accept-side fault schedule never fired")
	}
}
