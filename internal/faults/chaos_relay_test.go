// Chaos coverage for the kernel-assisted relay layer: the selective-split
// rule under fault injection (instrumented pumps must ride the pooled
// copy, where every byte is observable), splice relays in flight across a
// Socket Takeover, and the pipe-pool fd hygiene both depend on.
package faults_test

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zdr/internal/faults"
	"zdr/internal/netx"
	"zdr/internal/proxy"
	"zdr/internal/throughput"
)

// countPipeFDs counts the process's open pipe descriptors — the resource
// the splice pool borrows. Socket churn from load and restarts does not
// move this number; leaked pipe pairs do.
func countPipeFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		dst, err := os.Readlink("/proc/self/fd/" + e.Name())
		if err == nil && strings.HasPrefix(dst, "pipe:") {
			n++
		}
	}
	return n
}

// TestChaosFaultWrappedRelayStaysOnCopyPath drives POST traffic (the
// PPR-armed, body-capturing path) and broker-relayed MQTT through a
// topology whose origin hops are fault-wrapped, and asserts the Libra
// selective split structurally: every relayed byte is accounted to the
// pooled-copy counter — where wrappers see it — and none to the kernel
// splice path, which would bypass the injectors.
func TestChaosFaultWrappedRelayStaysOnCopyPath(t *testing.T) {
	inj := faults.NewInjector(faults.Scenario{
		Seed:             1201,
		PartialWriteRate: 0.3,
		ReadStallRate:    0.2,
		ReadStallMax:     2 * time.Millisecond,
	})
	accept := faults.NewInjector(faults.Scenario{
		Seed:             1202,
		PartialWriteRate: 0.3,
	})
	tp := buildChaosTopo(t, func(cfg *proxy.Config) {
		cfg.Faults = inj
		cfg.AcceptFaults = accept
	}, nil)

	before := netx.ReadRelayStats()
	addr := tp.edge.Current().Addr(proxy.VIPWeb)
	body := bytes.Repeat([]byte("ppr-armed-body "), 4<<10) // ~60 KiB
	const posts = 24
	for i := 0; i < posts; i++ {
		if err := doHTTP(addr, "POST", "/upload", body); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}
	after := netx.ReadRelayStats()

	if after.SpliceBytes != before.SpliceBytes {
		t.Fatalf("splice path moved %d bytes on instrumented pumps — selective split violated",
			after.SpliceBytes-before.SpliceBytes)
	}
	// Each POST crosses at least the edge request pump and the origin
	// response pump; requiring one body's worth per POST proves the bytes
	// really flowed through Relay's copy path, not around it.
	if moved := after.CopyBytes - before.CopyBytes; moved < int64(posts*len(body)) {
		t.Fatalf("copy path moved %d bytes, want at least %d", moved, posts*len(body))
	}
	if inj.InjectedTotal() == 0 {
		t.Fatal("fault injector never fired — wrappers were not on the byte path")
	}
}

// TestChaosMidSpliceTakeoverDrains runs live splice(2) relays — real
// kernel pipes in flight — while both proxy tiers restart via Socket
// Takeover under HTTP load. The takeover must not disturb the splices,
// the splices must not leak state into the next generation, and the
// retiring generation's DrainPipePool must leave the process's pipe-fd
// table exactly as it found it.
func TestChaosMidSpliceTakeoverDrains(t *testing.T) {
	tp := buildChaosTopo(t, nil, nil)
	addr := tp.edge.Current().Addr(proxy.VIPWeb)

	netx.DrainPipePool()
	basePipes := countPipeFDs(t)
	before := netx.ReadRelayStats()

	// Splice pumps: each relays 8 MiB through a pooled kernel pipe, in a
	// loop, so takeover always lands mid-splice somewhere.
	stopPumps := make(chan struct{})
	var pumpErr atomic.Value
	var spliced sync.WaitGroup
	for i := 0; i < 2; i++ {
		spliced.Add(1)
		go func() {
			defer spliced.Done()
			for {
				select {
				case <-stopPumps:
					return
				default:
				}
				if _, err := throughput.RunTCPRelay(8<<20, true); err != nil {
					pumpErr.Store(err)
					return
				}
			}
		}()
	}

	stop := make(chan struct{})
	var ok, failed atomic.Int64
	var lastErr atomic.Value
	done := httpLoad(addr, stop, &ok, &failed, &lastErr)
	time.Sleep(100 * time.Millisecond)

	if err := tp.origin.Restart(); err != nil {
		t.Fatalf("origin restart: %v", err)
	}
	if err := tp.edge.Restart(); err != nil {
		t.Fatalf("edge restart: %v", err)
	}
	time.Sleep(200 * time.Millisecond)

	close(stop)
	<-done
	close(stopPumps)
	spliced.Wait()

	if err := pumpErr.Load(); err != nil {
		t.Fatalf("splice pump failed across takeover: %v", err)
	}
	if f := failed.Load(); f != 0 {
		t.Fatalf("%d of %d requests failed across mid-splice takeovers; last: %v",
			f, f+ok.Load(), lastErr.Load())
	}
	if ok.Load() < 20 {
		t.Fatalf("only %d requests completed — load loop starved", ok.Load())
	}
	if moved := netx.ReadRelayStats().SpliceBytes - before.SpliceBytes; moved < 16<<20 {
		t.Fatalf("splice path moved only %d bytes — pumps were not on the kernel path", moved)
	}

	// The retiring-generation rule: after draining the pool, no pipe fds
	// beyond the pre-test baseline may remain anywhere in the process.
	netx.DrainPipePool()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := countPipeFDs(t); n <= basePipes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipe fds leaked: %d open, baseline %d", countPipeFDs(t), basePipes)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
