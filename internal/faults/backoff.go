package faults

import (
	"context"
	"time"

	"zdr/internal/workload"
)

// Backoff is a capped exponential backoff with deterministic jitter. The
// zero value is usable: 20ms base, doubling, capped at 500ms, 10
// attempts, no jitter. It replaces the hand-rolled fixed-interval retry
// loops that used to live in core.ProxySlot.Restart, the origin's PPR
// retry loop, and takeover.Connect.
type Backoff struct {
	Base     time.Duration // first delay (default 20ms)
	Max      time.Duration // per-delay cap (default 500ms)
	Factor   float64       // growth factor (default 2)
	Jitter   float64       // fraction of the delay randomised, in [0,1]
	Attempts int           // attempts for Retry (default 10)
	Seed     uint64        // jitter seed; same seed → same jitter sequence
}

const (
	defaultBase     = 20 * time.Millisecond
	defaultMax      = 500 * time.Millisecond
	defaultFactor   = 2.0
	defaultAttempts = 10
)

// Delay returns the pause after the attempt-th failure (attempt 0 is the
// first). It is a pure function: deterministic given (Backoff, attempt).
func (b Backoff) Delay(attempt int) time.Duration {
	base, max, factor := b.Base, b.Max, b.Factor
	if base <= 0 {
		base = defaultBase
	}
	if max <= 0 {
		max = defaultMax
	}
	if factor < 1 {
		factor = defaultFactor
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	if b.Jitter > 0 {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		// Deterministic jitter: scale by a factor in [1-j/2, 1+j/2]
		// drawn from the (Seed, attempt) stream.
		u := workload.NewRNG(mix(b.Seed, uint64(attempt))).Float64()
		d *= 1 - j/2 + j*u
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }
func (p permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Retry stops immediately and returns err instead
// of burning the remaining attempts (e.g. a protocol violation behind a
// successful dial).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err: err}
}

// Retry runs op up to b.Attempts times, sleeping Delay(i) between
// attempts, until op returns nil, a Permanent error, or ctx is done. It
// returns nil on success, the unwrapped error for a Permanent failure,
// and otherwise the last attempt's error (or ctx.Err() if cancellation
// struck before any attempt failed).
func (b Backoff) Retry(ctx context.Context, op func() error) error {
	attempts := b.Attempts
	if attempts <= 0 {
		attempts = defaultAttempts
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			t := time.NewTimer(b.Delay(i - 1))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return err
			}
		}
		if err = op(); err == nil {
			return nil
		}
		var pe permanentError
		if ok := asPermanent(err, &pe); ok {
			return pe.err
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}

// asPermanent is errors.As specialised to permanentError without pulling
// reflection into the hot path.
func asPermanent(err error, target *permanentError) bool {
	for err != nil {
		if pe, ok := err.(permanentError); ok {
			*target = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
