package faults

import (
	"io"
	"net"
	"testing"
	"time"
)

// TestShapingSustainedRate pins the token bucket's accuracy: pushing
// 1 MiB through a 4 MiB/s bucket with 64 KiB burst must take roughly
// (total - burst) / rate ≈ 234 ms. Bounds are generous for CI jitter but
// tight enough to catch a bucket that leaks (too fast) or double-charges
// (too slow).
func TestShapingSustainedRate(t *testing.T) {
	in := NewInjector(Scenario{
		BandwidthBytesPerSec: 4 << 20,
		BandwidthBurstBytes:  64 << 10,
	})
	a, b := net.Pipe()
	defer b.Close()
	wc := in.Conn(a)
	defer wc.Close()
	go io.Copy(io.Discard, b)

	const total = 1 << 20
	buf := make([]byte, 32<<10)
	start := time.Now()
	for sent := 0; sent < total; sent += len(buf) {
		if _, err := wc.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// Ideal: (1 MiB - 64 KiB) / 4 MiB/s = 234 ms.
	if elapsed < 150*time.Millisecond {
		t.Fatalf("shaping too permissive: 1 MiB at 4 MiB/s took %v (want ≥ 150ms)", elapsed)
	}
	if elapsed > 800*time.Millisecond {
		t.Fatalf("shaping too strict: 1 MiB at 4 MiB/s took %v (want ≤ 800ms)", elapsed)
	}
}

// TestShapingBurstPassesUnthrottled: traffic within the burst allowance
// must not sleep at all.
func TestShapingBurstPassesUnthrottled(t *testing.T) {
	in := NewInjector(Scenario{
		BandwidthBytesPerSec: 1 << 20,
		BandwidthBurstBytes:  256 << 10,
	})
	a, b := net.Pipe()
	defer b.Close()
	wc := in.Conn(a)
	defer wc.Close()
	go io.Copy(io.Discard, b)

	buf := make([]byte, 64<<10)
	start := time.Now()
	for sent := 0; sent < 256<<10; sent += len(buf) {
		if _, err := wc.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("burst-sized traffic was throttled: %v", elapsed)
	}
}

// TestShapingDisabledByDefault: the zero Scenario must not shape.
func TestShapingDisabledByDefault(t *testing.T) {
	if sh := newShaper(0, 0); sh != nil {
		t.Fatal("zero rate produced a shaper")
	}
	var sh *shaper
	sh.take(1 << 30) // nil-receiver no-op must not block or panic
}
