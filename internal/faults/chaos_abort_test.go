// Two-phase abort chaos: the acceptance scenario for the prepare/commit
// takeover protocol. The receiver is killed at the worst instant — armed
// and serving, PREPARE-ACK on the wire, COMMIT not yet delivered — under
// live HTTP load, and the release must be a non-event: the sender never
// stops accepting, no client sees a reset, the process FD count returns
// to baseline, and the trace shows an aborted takeover.prepare with no
// takeover.commit.
package faults_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"zdr/internal/netx"
	"zdr/internal/obs"
	"zdr/internal/proxy"
	"zdr/internal/takeover"
)

// framePrepareAck mirrors the takeover wire protocol's PREPARE-ACK frame
// kind. The netx FD hook sees raw outgoing frames, so the injection keys
// on the first byte; if the wire constant ever drifts this test fails on
// its "injection fired" assertion rather than silently passing.
const framePrepareAck = 5

// settleFDCount polls /proc/self/fd until the count reaches want (socket
// closes are asynchronous to Close).
func settleFDCount(t *testing.T, want int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := netx.OpenFDCount()
		if err != nil {
			t.Fatal(err)
		}
		if got == want || time.Now().After(deadline) {
			return got
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChaosAbortBeforeCommitZeroDisruption(t *testing.T) {
	tracer := obs.NewTracer("abort-chaos")
	tp := buildChaosTopo(t, nil,
		func(cfg *proxy.Config) { cfg.Trace = tracer },
	)
	addr := tp.edge.Current().Addr(proxy.VIPWeb)

	// Warm the edge→origin tunnel so the FD baseline includes the
	// steady-state connection set.
	for i := 0; i < 3; i++ {
		if err := doHTTP(addr, "GET", "/warm", nil); err != nil {
			t.Fatalf("warm-up request %d: %v", i, err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	baseline, err := netx.OpenFDCount()
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var ok, failed atomic.Int64
	var lastErr atomic.Value
	done := httpLoad(addr, stop, &ok, &failed, &lastErr)

	// Kill the receiver at the acceptance instant: it has adopted the
	// sockets, armed its accept loops, and is writing PREPARE-ACK — which
	// never makes it onto the wire.
	var injected atomic.Int64
	netx.SetFDHook(func(op string, data []byte, fds []int) error {
		if op == "write" && len(data) > 0 && data[0] == framePrepareAck {
			injected.Add(1)
			return errors.New("injected receiver death at prepare-ack")
		}
		return nil
	})
	defer netx.SetFDHook(nil)

	oldGen := tp.edge.Current()
	tp.edge.AbortRetries = -1 // observe the single abort, no auto-retry
	err = tp.edge.Restart()
	if err == nil {
		t.Fatal("restart succeeded with a receiver that dies at prepare-ack")
	}
	if !errors.Is(err, takeover.ErrAborted) {
		t.Fatalf("restart error not classified as pre-commit abort: %v", err)
	}
	if injected.Load() == 0 {
		t.Fatal("prepare-ack injection never fired — wire constant drift?")
	}

	// The sender never stopped accepting: same generation, not draining,
	// abort counted, nothing committed.
	if cur := tp.edge.Current(); cur != oldGen {
		t.Fatal("aborted restart replaced the serving generation")
	}
	if oldGen.Draining() {
		t.Fatal("aborted hand-off put the old generation into drain")
	}
	// The sender observes the receiver's death asynchronously (EOF on the
	// takeover socket after the receiver hangs up); give it a moment.
	abortSeen := time.Now().Add(3 * time.Second)
	for oldGen.Metrics().CounterValue("proxy.takeover_aborts") == 0 && time.Now().Before(abortSeen) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := oldGen.Metrics().CounterValue("proxy.takeover_aborts"); got != 1 {
		t.Errorf("proxy.takeover_aborts = %d, want 1", got)
	}
	if got := oldGen.Metrics().CounterValue("proxy.takeover_commits"); got != 0 {
		t.Errorf("proxy.takeover_commits = %d after an abort, want 0", got)
	}

	// Zero client-visible disruption across the abort.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	<-done
	if f := failed.Load(); f != 0 {
		t.Fatalf("%d of %d requests failed across the aborted takeover; last: %v",
			f, f+ok.Load(), lastErr.Load())
	}
	if ok.Load() < 20 {
		t.Fatalf("only %d requests completed — load loop starved", ok.Load())
	}

	// Every FD the aborted hand-off created — sender dups, SCM_RIGHTS
	// copies, the receiver's reconstructed listeners — is closed.
	if got := settleFDCount(t, baseline); got != baseline {
		t.Fatalf("fd count after abort = %d, want baseline %d", got, baseline)
	}

	// A redeploy now simply runs again: same path, fresh receiver, no
	// faults — and completes.
	netx.SetFDHook(nil)
	if err := tp.edge.Restart(); err != nil {
		t.Fatalf("retried restart after abort: %v", err)
	}
	if tp.edge.Current() == oldGen {
		t.Fatal("retried restart did not promote a new generation")
	}
	for i := 0; i < 3; i++ {
		if err := doHTTP(addr, "GET", "/post-retry", nil); err != nil {
			t.Fatalf("request %d on the promoted generation: %v", i, err)
		}
	}

	// Trace audit: the aborted attempt shows takeover.prepare failing —
	// on both the receiver's hand-off trace and the sender's
	// takeover.serve trace — and records NO takeover.commit span in
	// either trace. The successful retry records commits in its own.
	abortedTraces := map[string]bool{}
	commits := map[string]int{}
	for _, r := range tracer.Finished() {
		switch r.Name {
		case "takeover.prepare":
			if r.Error != "" {
				abortedTraces[r.TraceID] = true
			}
		case "takeover.commit":
			commits[r.TraceID]++
		}
	}
	if len(abortedTraces) < 2 {
		t.Errorf("aborted takeover.prepare spans found in %d traces, want receiver + sender views", len(abortedTraces))
	}
	for tid := range abortedTraces {
		if n := commits[tid]; n != 0 {
			t.Errorf("aborted trace %s records %d takeover.commit span(s), want none", tid, n)
		}
	}
	total := 0
	for _, n := range commits {
		total += n
	}
	if total < 2 {
		t.Errorf("successful retry recorded %d takeover.commit spans, want receiver + sender views", total)
	}
}
