// Package faults is a deterministic, seed-driven fault-injection layer
// for chaos-testing the release path (§5 "Operational Experience": the
// interesting behavior of a zero-downtime release only shows up when the
// network misbehaves mid-handoff).
//
// A Scenario describes fault *rates*; Scenario.Plan materialises, purely
// from (Seed, connection index), the exact schedule of faults one
// connection will experience — which delay before which read, which
// write is split, which operation aborts the transport. The PRNG is the
// same splitmix64 used by internal/workload, so a given Scenario
// reproduces byte-identical schedules on every run and platform: a chaos
// failure found in CI is replayable locally from nothing but the seed.
//
// An Injector hands out wrapped net.Conn / net.Listener / net.PacketConn
// values and a Dial helper. All Injector methods are nil-receiver safe:
// a nil *Injector is a no-op pass-through, so production paths carry an
// optional injector without branching.
package faults

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zdr/internal/workload"
)

// Op identifies one fault class.
type Op uint8

const (
	// OpNone leaves the operation untouched.
	OpNone Op = iota
	// OpDelay sleeps before a write (or a dial) proceeds.
	OpDelay
	// OpPartialWrite splits one write into several small underlying
	// writes, stressing reader-side reassembly of framed protocols. The
	// io.Writer contract is preserved: the full buffer is written unless
	// the transport itself errors.
	OpPartialWrite
	// OpStallRead sleeps before a read proceeds.
	OpStallRead
	// OpAbort closes the transport abruptly (SO_LINGER=0 on TCP, i.e. an
	// RST rather than an orderly FIN) and fails the operation.
	OpAbort
	// OpDropPacket silently discards a datagram (PacketConn only).
	OpDropPacket
	// OpFailDial fails a dial before any connection is made.
	OpFailDial
	// OpDropRPC fails one control-plane call (Injector.RPC) outright —
	// the operator↔node analogue of a lost request.
	OpDropRPC
	// OpDelayRPC delays one control-plane call before it proceeds.
	OpDelayRPC

	opCount
)

// String names the op for schedule dumps and test output.
func (o Op) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpDelay:
		return "delay"
	case OpPartialWrite:
		return "partial-write"
	case OpStallRead:
		return "stall-read"
	case OpAbort:
		return "abort"
	case OpDropPacket:
		return "drop-packet"
	case OpFailDial:
		return "fail-dial"
	case OpDropRPC:
		return "drop-rpc"
	case OpDelayRPC:
		return "delay-rpc"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Step is one scheduled fault applied to the n-th read or write of a
// connection.
type Step struct {
	Op    Op
	Delay time.Duration // OpDelay / OpStallRead: how long to sleep
	Chunk int           // OpPartialWrite: max bytes per underlying write
}

// Scenario describes a reproducible fault schedule. All *Rate fields are
// probabilities in [0, 1] applied independently per operation (or per
// dial / per packet). The zero Scenario injects nothing.
type Scenario struct {
	// Seed drives every random choice. Two Scenarios with equal fields
	// produce byte-identical plans.
	Seed uint64

	// Dial-path faults.
	DialFailRate  float64       // probability a dial fails outright
	DialDelayRate float64       // probability a dial is delayed
	DialDelayMax  time.Duration // upper bound for an injected dial delay

	// Stream-connection faults, scheduled per read/write operation.
	WriteDelayRate   float64       // probability a write is delayed
	WriteDelayMax    time.Duration // upper bound for a write delay
	PartialWriteRate float64       // probability a write is split up
	ReadStallRate    float64       // probability a read is stalled
	ReadStallMax     time.Duration // upper bound for a read stall
	AbortRate        float64       // probability an op aborts the conn
	AbortMinOps      int           // ops exempt from abort at the head of a conn (lets handshakes complete)

	// Bandwidth shaping: when BandwidthBytesPerSec > 0, every wrapped
	// stream connection's writes pass through a per-connection token
	// bucket of that sustained rate, with BandwidthBurstBytes of burst
	// capacity (default: 100 ms worth of the rate). Shaping composes with
	// the scheduled faults above — WriteDelayRate/WriteDelayMax remain
	// the per-operation jitter knobs — and, unlike them, is continuous
	// rather than sampled, so it models a slow link instead of a glitch.
	BandwidthBytesPerSec float64
	BandwidthBurstBytes  int

	// Control-plane faults, applied per Injector.RPC call (the
	// operator↔node channel, distinct from the data-plane conns above).
	// Fleet chaos tests use these to degrade — and, together with
	// Injector.SetPartitioned, sever — the control plane mid-batch.
	RPCDropRate  float64       // probability a control call fails outright
	RPCDelayRate float64       // probability a control call is delayed
	RPCDelayMax  time.Duration // upper bound for an injected RPC delay

	// Datagram faults.
	DropRate float64 // probability a datagram is dropped (each direction)

	// MaxOps bounds the per-connection schedule length; operations past
	// the schedule run clean. Defaults to 64.
	MaxOps int
}

// DefaultMaxOps is the schedule length used when Scenario.MaxOps is 0.
const DefaultMaxOps = 64

// Plan is the fully materialised fault schedule for one connection:
// Reads[i] / Writes[i] apply to the connection's i-th read / write,
// Drops[i] to its i-th datagram in each direction.
type Plan struct {
	Conn      uint64 // connection index the plan was derived for
	DialFail  bool
	DialDelay time.Duration
	RPCDrop   bool          // the call this plan is consumed by fails
	RPCDelay  time.Duration // delay before the call proceeds
	Reads     []Step
	Writes    []Step
	Drops     []bool
}

// String renders the plan canonically; the determinism acceptance test
// compares these dumps byte-for-byte across runs.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conn %d dialfail=%v dialdelay=%s\n", p.Conn, p.DialFail, p.DialDelay)
	if p.RPCDrop || p.RPCDelay > 0 {
		fmt.Fprintf(&b, "  rpc drop=%v delay=%s\n", p.RPCDrop, p.RPCDelay)
	}
	for i, s := range p.Reads {
		if s.Op != OpNone {
			fmt.Fprintf(&b, "  r[%d] %s delay=%s\n", i, s.Op, s.Delay)
		}
	}
	for i, s := range p.Writes {
		if s.Op != OpNone {
			fmt.Fprintf(&b, "  w[%d] %s delay=%s chunk=%d\n", i, s.Op, s.Delay, s.Chunk)
		}
	}
	for i, d := range p.Drops {
		if d {
			fmt.Fprintf(&b, "  p[%d] drop\n", i)
		}
	}
	return b.String()
}

// mix folds a connection index into the scenario seed, splitmix64-style,
// so per-connection streams are independent but fully determined.
func mix(seed, conn uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(conn+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func randDur(rng *workload.RNG, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(rng.Float64() * float64(max))
}

// Plan derives the schedule for the conn-th connection. It is a pure
// function of (Scenario, conn).
func (s Scenario) Plan(conn uint64) Plan {
	rng := workload.NewRNG(mix(s.Seed, conn))
	maxOps := s.MaxOps
	if maxOps <= 0 {
		maxOps = DefaultMaxOps
	}
	pl := Plan{Conn: conn}
	pl.DialFail = s.DialFailRate > 0 && rng.Float64() < s.DialFailRate
	if s.DialDelayRate > 0 && rng.Float64() < s.DialDelayRate {
		pl.DialDelay = randDur(rng, s.DialDelayMax)
	}
	pl.RPCDrop = s.RPCDropRate > 0 && rng.Float64() < s.RPCDropRate
	if s.RPCDelayRate > 0 && rng.Float64() < s.RPCDelayRate {
		pl.RPCDelay = randDur(rng, s.RPCDelayMax)
	}
	if s.ReadStallRate > 0 || s.AbortRate > 0 {
		pl.Reads = make([]Step, maxOps)
		for i := range pl.Reads {
			switch {
			case s.AbortRate > 0 && i >= s.AbortMinOps && rng.Float64() < s.AbortRate:
				pl.Reads[i] = Step{Op: OpAbort}
			case s.ReadStallRate > 0 && rng.Float64() < s.ReadStallRate:
				pl.Reads[i] = Step{Op: OpStallRead, Delay: randDur(rng, s.ReadStallMax)}
			}
		}
	}
	if s.WriteDelayRate > 0 || s.PartialWriteRate > 0 || s.AbortRate > 0 {
		pl.Writes = make([]Step, maxOps)
		for i := range pl.Writes {
			switch {
			case s.AbortRate > 0 && i >= s.AbortMinOps && rng.Float64() < s.AbortRate:
				pl.Writes[i] = Step{Op: OpAbort}
			case s.PartialWriteRate > 0 && rng.Float64() < s.PartialWriteRate:
				pl.Writes[i] = Step{Op: OpPartialWrite, Chunk: 1 + rng.Intn(512)}
			case s.WriteDelayRate > 0 && rng.Float64() < s.WriteDelayRate:
				pl.Writes[i] = Step{Op: OpDelay, Delay: randDur(rng, s.WriteDelayMax)}
			}
		}
	}
	if s.DropRate > 0 {
		pl.Drops = make([]bool, maxOps)
		for i := range pl.Drops {
			pl.Drops[i] = rng.Float64() < s.DropRate
		}
	}
	return pl
}

// ErrInjected is the sentinel wrapped by every injector-produced error,
// so tests and retry loops can tell injected faults from real ones.
var ErrInjected = errors.New("faults: injected")

// Injector assigns consecutive connection indices to the connections it
// wraps and applies each one's Plan. A nil *Injector is a valid no-op.
type Injector struct {
	sc          Scenario
	next        atomic.Uint64
	counts      [opCount]atomic.Uint64
	partitioned atomic.Bool
	observer    atomic.Pointer[func(Op)]
}

// NewInjector creates an injector for sc.
func NewInjector(sc Scenario) *Injector { return &Injector{sc: sc} }

// Scenario returns the injector's scenario (zero Scenario when nil).
func (in *Injector) Scenario() Scenario {
	if in == nil {
		return Scenario{}
	}
	return in.sc
}

// Injected reports how many faults of class op have fired so far.
func (in *Injector) Injected(op Op) uint64 {
	if in == nil || int(op) >= len(in.counts) {
		return 0
	}
	return in.counts[op].Load()
}

// InjectedTotal reports the total number of faults fired so far.
func (in *Injector) InjectedTotal() uint64 {
	if in == nil {
		return 0
	}
	var t uint64
	for i := range in.counts {
		t += in.counts[i].Load()
	}
	return t
}

func (in *Injector) count(op Op) {
	if int(op) < len(in.counts) {
		in.counts[op].Add(1)
	}
	if fn := in.observer.Load(); fn != nil {
		(*fn)(op)
	}
}

// SetObserver registers fn to be invoked once per injected fault, with
// the op that fired, at the moment the injector counts it. The chaos
// suite uses this to mirror every injected fault into a disruption
// ledger so injected and observed failures can be reconciled exactly.
// One observer at a time; fn must be cheap and non-blocking (it runs on
// the faulted connection's goroutine). Nil-receiver safe.
func (in *Injector) SetObserver(fn func(Op)) {
	if in == nil {
		return
	}
	if fn == nil {
		in.observer.Store(nil)
		return
	}
	in.observer.Store(&fn)
}

// nextPlan consumes the next connection index.
func (in *Injector) nextPlan() Plan { return in.sc.Plan(in.next.Add(1) - 1) }

// Conn wraps c with the next connection's fault schedule. Nil injector
// (or nil conn) passes through.
func (in *Injector) Conn(c net.Conn) net.Conn {
	if in == nil || c == nil {
		return c
	}
	return &conn{Conn: c, in: in, pl: in.nextPlan(), sh: in.newShaper()}
}

func (in *Injector) newShaper() *shaper {
	return newShaper(in.sc.BandwidthBytesPerSec, in.sc.BandwidthBurstBytes)
}

// Listener wraps l so every accepted connection is fault-wrapped. Nil
// injector passes through.
func (in *Injector) Listener(l net.Listener) net.Listener {
	if in == nil || l == nil {
		return l
	}
	return &listener{Listener: l, in: in}
}

// PacketConn wraps pc with the next connection's drop schedule. Nil
// injector passes through.
func (in *Injector) PacketConn(pc net.PacketConn) net.PacketConn {
	if in == nil || pc == nil {
		return pc
	}
	return &packetConn{PacketConn: pc, in: in, pl: in.nextPlan()}
}

// SetPartitioned severs (true) or heals (false) the control plane: while
// severed, every RPC call fails immediately, modelling a full network
// partition between the operator and its nodes. Orthogonal to the
// scheduled RPCDropRate/RPCDelayRate faults, which model a lossy — not
// absent — channel. Nil-receiver safe (no-op).
func (in *Injector) SetPartitioned(v bool) {
	if in != nil {
		in.partitioned.Store(v)
	}
}

// Partitioned reports whether the control plane is currently severed.
func (in *Injector) Partitioned() bool {
	return in != nil && in.partitioned.Load()
}

// RPC applies the next scheduled control-plane fault to one
// operator↔node call: it sleeps any scheduled delay, then returns an
// ErrInjected-wrapped error if the call is scheduled to drop (or the
// injector is partitioned). A nil error means the call may proceed. op
// names the call in the error for test output. Nil injector never
// injects.
func (in *Injector) RPC(op string) error {
	if in == nil {
		return nil
	}
	if in.partitioned.Load() {
		in.count(OpDropRPC)
		return fmt.Errorf("%w rpc %s dropped (partitioned)", ErrInjected, op)
	}
	if in.sc.RPCDropRate <= 0 && in.sc.RPCDelayRate <= 0 {
		return nil
	}
	pl := in.nextPlan()
	if pl.RPCDelay > 0 {
		in.count(OpDelayRPC)
		time.Sleep(pl.RPCDelay)
	}
	if pl.RPCDrop {
		in.count(OpDropRPC)
		return fmt.Errorf("%w rpc %s dropped (conn %d)", ErrInjected, op, pl.Conn)
	}
	return nil
}

// Dial dials like net.DialTimeout through the injector: the next
// connection's plan decides whether the dial is delayed or fails, and
// the returned conn carries the rest of that plan. A nil injector is
// exactly net.DialTimeout.
func (in *Injector) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	if in == nil {
		return net.DialTimeout(network, addr, timeout)
	}
	pl := in.nextPlan()
	if pl.DialDelay > 0 {
		in.count(OpDelay)
		time.Sleep(pl.DialDelay)
	}
	if pl.DialFail {
		in.count(OpFailDial)
		return nil, &net.OpError{Op: "dial", Net: network, Err: fmt.Errorf("%w dial failure (conn %d)", ErrInjected, pl.Conn)}
	}
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return &conn{Conn: c, in: in, pl: pl, sh: in.newShaper()}, nil
}

// listener fault-wraps accepted connections.
type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(c), nil
}

// shaper is a token bucket limiting sustained write throughput. Tokens
// are bytes; a write spends its size and sleeps off any debt, so large
// writes simply owe proportionally longer — sustained rate stays exact
// regardless of write sizing.
type shaper struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // bucket capacity, bytes
	tokens float64
	last   time.Time
}

// newShaper returns nil (no shaping) when rate <= 0. burst <= 0 defaults
// to 100 ms worth of the rate.
func newShaper(rate float64, burst int) *shaper {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = rate / 10
	}
	if b < 1 {
		b = 1
	}
	return &shaper{rate: rate, burst: b, tokens: b, last: time.Now()}
}

// take spends n tokens, sleeping until the bucket (refilled at rate, capped
// at burst) covers the debt. Nil-receiver safe.
func (s *shaper) take(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.mu.Lock()
	now := time.Now()
	s.tokens += now.Sub(s.last).Seconds() * s.rate
	if s.tokens > s.burst {
		s.tokens = s.burst
	}
	s.last = now
	s.tokens -= float64(n)
	var wait time.Duration
	if s.tokens < 0 {
		wait = time.Duration(-s.tokens / s.rate * float64(time.Second))
	}
	s.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// conn applies a Plan's read/write schedules to a stream connection.
type conn struct {
	net.Conn
	in *Injector
	pl Plan
	sh *shaper

	rmu  sync.Mutex
	ridx int
	wmu  sync.Mutex
	widx int

	aborted atomic.Bool
}

// abort tears the transport down un-gracefully: linger 0 turns the close
// into a TCP RST, the abrupt-close class of §5 incidents.
func (c *conn) abort() {
	if c.aborted.Swap(true) {
		return
	}
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
}

func (c *conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	var st Step
	if c.ridx < len(c.pl.Reads) {
		st = c.pl.Reads[c.ridx]
		c.ridx++
	}
	c.rmu.Unlock()
	switch st.Op {
	case OpStallRead:
		c.in.count(OpStallRead)
		time.Sleep(st.Delay)
	case OpAbort:
		c.in.count(OpAbort)
		c.abort()
		return 0, fmt.Errorf("%w abort on read (conn %d)", ErrInjected, c.pl.Conn)
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	c.sh.take(len(p))
	c.wmu.Lock()
	var st Step
	if c.widx < len(c.pl.Writes) {
		st = c.pl.Writes[c.widx]
		c.widx++
	}
	c.wmu.Unlock()
	switch st.Op {
	case OpDelay:
		c.in.count(OpDelay)
		time.Sleep(st.Delay)
	case OpAbort:
		c.in.count(OpAbort)
		c.abort()
		return 0, fmt.Errorf("%w abort on write (conn %d)", ErrInjected, c.pl.Conn)
	case OpPartialWrite:
		c.in.count(OpPartialWrite)
		chunk := st.Chunk
		if chunk <= 0 {
			chunk = 1
		}
		total := 0
		for len(p) > 0 {
			n := chunk
			if n > len(p) {
				n = len(p)
			}
			m, err := c.Conn.Write(p[:n])
			total += m
			if err != nil {
				return total, err
			}
			p = p[n:]
		}
		return total, nil
	}
	return c.Conn.Write(p)
}

// packetConn applies a Plan's drop schedule to datagrams. Drops on the
// write side report success (the datagram vanished in the network);
// drops on the read side skip to the next datagram.
type packetConn struct {
	net.PacketConn
	in *Injector
	pl Plan

	rmu  sync.Mutex
	ridx int
	wmu  sync.Mutex
	widx int
}

func (pc *packetConn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		n, addr, err := pc.PacketConn.ReadFrom(p)
		if err != nil {
			return n, addr, err
		}
		pc.rmu.Lock()
		drop := false
		if pc.ridx < len(pc.pl.Drops) {
			drop = pc.pl.Drops[pc.ridx]
			pc.ridx++
		}
		pc.rmu.Unlock()
		if drop {
			pc.in.count(OpDropPacket)
			continue
		}
		return n, addr, nil
	}
}

func (pc *packetConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	pc.wmu.Lock()
	drop := false
	if pc.widx < len(pc.pl.Drops) {
		drop = pc.pl.Drops[pc.widx]
		pc.widx++
	}
	pc.wmu.Unlock()
	if drop {
		pc.in.count(OpDropPacket)
		return len(p), nil
	}
	return pc.PacketConn.WriteTo(p, addr)
}
