// Chaos coverage for the probe transport: health probes and Prequal
// load probes ride one Prober implementation with one fault-injection
// point (HCProber.Dial → Injector.Dial), so a partition injected there
// severs both protocols at once and drain-aware steering must bleed
// fresh flows off the partitioned backend as its probe pool ages out —
// then readmit it when the partition heals.
package faults_test

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"zdr/internal/faults"
	"zdr/internal/katran"
	"zdr/internal/metrics"
)

// chaosLoadServer answers the health ("HC\n" → "OK\n") and load-probe
// ("LOAD\n" → sample line) protocols with a fixed advertisement.
func chaosLoadServer(t *testing.T, sample katran.LoadSample) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					switch strings.TrimSpace(line) {
					case "HC":
						conn.Write([]byte("OK\n"))
					case "LOAD":
						conn.Write([]byte(katran.EncodeLoadLine(sample)))
					default:
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestChaosProbePartitionSteersAwayThenHeals partitions one backend's
// probe transport through the shared injector dial point. While cut,
// both probe protocols fail with ErrInjected, the backend's pool ages
// out, and every fresh flow lands on the reachable backend — even
// though the partitioned one advertises the objectively better load.
// Healing the partition lets the pool refill and the better backend
// win picks again.
func TestChaosProbePartitionSteersAwayThenHeals(t *testing.T) {
	// The partition victim is the colder, faster backend: only stale or
	// missing probes could explain steering away from it.
	aAddr := chaosLoadServer(t, katran.LoadSample{RIF: 50, Latency: 10 * time.Millisecond, Phase: katran.PhaseServing})
	bAddr := chaosLoadServer(t, katran.LoadSample{RIF: 0, Latency: time.Microsecond, Phase: katran.PhaseServing})

	inj := faults.NewInjector(faults.Scenario{Seed: 1, DialFailRate: 1})
	var cut atomic.Bool
	cut.Store(true)
	prober := &katran.HCProber{Dial: func(network, addr string, timeout time.Duration) (net.Conn, error) {
		if addr == bAddr && cut.Load() {
			return inj.Dial(network, addr, timeout)
		}
		return net.DialTimeout(network, addr, timeout)
	}}

	reg := metrics.NewRegistry()
	lb := katran.New("chaos-probes", katran.Config{
		Prober: prober,
		Policy: katran.NewPolicy("prequal", katran.PrequalConfig{
			Prober:        prober,
			ProbeInterval: 5 * time.Millisecond,
			ProbeTimeout:  200 * time.Millisecond,
			MaxAge:        50 * time.Millisecond,
			ReuseBudget:   1 << 20,
			PowerD:        2,
			Seed:          3,
		}, reg),
	}, reg)
	defer lb.Close()
	lb.AddBackend(katran.Backend{Name: "a", Addr: "127.0.0.1:1", HealthAddr: aAddr}, true)
	lb.AddBackend(katran.Backend{Name: "b", Addr: "127.0.0.1:2", HealthAddr: bAddr}, true)

	// One injection point carries both protocols: the cut severs the
	// one-shot health probe and the persistent load channel identically.
	if err := prober.Probe(bAddr, 200*time.Millisecond); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("health probe through the cut = %v, want ErrInjected", err)
	}
	if _, err := prober.Load(bAddr, 200*time.Millisecond); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("load probe through the cut = %v, want ErrInjected", err)
	}

	time.Sleep(80 * time.Millisecond) // a's pool fills; b's stays empty
	for i := 0; i < 32; i++ {
		b, err := lb.Steer(uint64(1000 + i))
		if err != nil {
			t.Fatal(err)
		}
		if b.Name != "b" {
			continue
		}
		t.Fatalf("fresh flow %d steered to the probe-partitioned backend (probes=%d errs=%d fallback=%d cold=%d)",
			i,
			reg.CounterValue("katran.prequal.probes"),
			reg.CounterValue("katran.prequal.probe_errors"),
			reg.CounterValue("katran.prequal.pick_fallback"),
			reg.CounterValue("katran.prequal.pick_cold"))
	}
	if inj.Injected(faults.OpFailDial) == 0 {
		t.Fatal("partition never exercised the injector dial point")
	}
	if reg.CounterValue("katran.prequal.probe_errors") == 0 {
		t.Fatal("injected probe failures must count on katran.prequal.probe_errors")
	}

	// Heal: the pool refills within a probe interval and the better
	// backend is eligible — and, being strictly colder, wins picks.
	cut.Store(false)
	time.Sleep(80 * time.Millisecond)
	won := 0
	for i := 0; i < 32; i++ {
		b, err := lb.Steer(uint64(2000 + i))
		if err != nil {
			t.Fatal(err)
		}
		if b.Name == "b" {
			won++
		}
	}
	if won == 0 {
		t.Fatal("healed backend never won a pick despite advertising the coldest load")
	}
}
