package proxy

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"zdr/internal/appserver"
	"zdr/internal/http1"
	"zdr/internal/katran"
	"zdr/internal/mqtt"
)

// topology is a full Edge→Origin→{AppServer,Broker} deployment on
// localhost.
type topology struct {
	broker  *mqtt.Broker
	brAddr  string
	apps    []*appserver.Server
	appAddr []string
	origins []*Proxy
	edge    *Proxy
}

func startTopology(t *testing.T, nApps, nOrigins int) *topology {
	t.Helper()
	tp := &topology{}

	tp.broker = mqtt.NewBroker("broker-1", nil)
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tp.brAddr = bln.Addr().String()
	go tp.broker.Serve(bln)
	t.Cleanup(func() { bln.Close(); tp.broker.Close() })

	for i := 0; i < nApps; i++ {
		as := appserver.New(appserver.Config{
			Name:         fmt.Sprintf("as-%d", i),
			Mode:         appserver.ModePPR,
			DrainPeriod:  50 * time.Millisecond,
			GraceWindow:  300 * time.Millisecond,
			GraceSilence: 60 * time.Millisecond,
		}, nil)
		addr, err := as.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tp.apps = append(tp.apps, as)
		tp.appAddr = append(tp.appAddr, addr)
		t.Cleanup(as.Close)
	}

	var originAddrs []string
	for i := 0; i < nOrigins; i++ {
		o := New(Config{
			Name:        fmt.Sprintf("origin-%d", i),
			Role:        RoleOrigin,
			AppServers:  tp.appAddr,
			Brokers:     []string{tp.brAddr},
			DrainPeriod: 200 * time.Millisecond,
		}, nil)
		if err := o.Listen(); err != nil {
			t.Fatal(err)
		}
		tp.origins = append(tp.origins, o)
		originAddrs = append(originAddrs, o.Addr(VIPTunnel))
		t.Cleanup(o.Close)
	}

	tp.edge = New(Config{
		Name:        "edge-0",
		Role:        RoleEdge,
		Origins:     originAddrs,
		DrainPeriod: 200 * time.Millisecond,
		StaticContent: map[string][]byte{
			"/static/logo": []byte("cached-bytes"),
		},
	}, nil)
	if err := tp.edge.Listen(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tp.edge.Close)
	return tp
}

func doRequest(t *testing.T, addr string, req *http1.Request) *http1.Response {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := http1.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	body, err := http1.ReadFullBody(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body = bytes.NewReader(body)
	return resp
}

func TestEndToEndGET(t *testing.T) {
	tp := startTopology(t, 1, 1)
	resp := doRequest(t, tp.edge.Addr(VIPWeb), http1.NewRequest("GET", "/api/feed", nil, 0))
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Via") != "edge-0" {
		t.Fatal("Via header missing")
	}
	if resp.Header.Get("X-Served-By") != "as-0" {
		t.Fatalf("X-Served-By = %q", resp.Header.Get("X-Served-By"))
	}
}

func TestEndToEndPOSTEcho(t *testing.T) {
	tp := startTopology(t, 2, 1)
	body := strings.Repeat("payload!", 512)
	resp := doRequest(t, tp.edge.Addr(VIPWeb), http1.NewRequest("POST", "/upload", strings.NewReader(body), int64(len(body))))
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	b, _ := http1.ReadFullBody(resp.Body)
	if string(b) != body {
		t.Fatalf("echo mismatch: %d vs %d bytes", len(b), len(body))
	}
}

func TestEdgeDirectServerReturn(t *testing.T) {
	tp := startTopology(t, 1, 1)
	resp := doRequest(t, tp.edge.Addr(VIPWeb), http1.NewRequest("GET", "/static/logo", nil, 0))
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("resp = %d %v", resp.StatusCode, resp.Header)
	}
	b, _ := http1.ReadFullBody(resp.Body)
	if string(b) != "cached-bytes" {
		t.Fatalf("body = %q", b)
	}
	if tp.edge.Metrics().CounterValue("edge.http.dsr") != 1 {
		t.Fatal("DSR not counted")
	}
}

func TestHealthProbe(t *testing.T) {
	tp := startTopology(t, 1, 1)
	if err := katran.ProbeHC(tp.edge.Addr(VIPHealth), time.Second); err != nil {
		t.Fatalf("healthy probe: %v", err)
	}
	tp.edge.StartDraining()
	// The edge's own listener handles are closed on drain; with no
	// takeover the health VIP goes away entirely (HardRestart behaviour):
	// either a refused connection or a DRAIN answer is "unhealthy".
	if err := katran.ProbeHC(tp.edge.Addr(VIPHealth), time.Second); err == nil {
		t.Fatal("draining edge still probes healthy")
	}
}

// TestPPREndToEnd: a slow POST upload survives an app-server restart
// mid-body. The client sees a single 200 with the full echoed body; the
// 379 never escapes the Origin.
func TestPPREndToEnd(t *testing.T) {
	tp := startTopology(t, 2, 1)
	addr := tp.edge.Addr(VIPWeb)

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const total = 4000
	const piece = 100
	body := bytes.Repeat([]byte("x"), total)
	head := fmt.Sprintf("POST /big-upload HTTP/1.1\r\nContent-Length: %d\r\n\r\n", total)
	if _, err := conn.Write([]byte(head)); err != nil {
		t.Fatal(err)
	}

	// Pace the upload; restart the serving app server early so the
	// remaining upload outlives the server's grace window.
	restartAt := total / 4
	for off := 0; off < total; off += piece {
		if off == restartAt {
			// Restart whichever app server took the request.
			serving := -1
			for i, as := range tp.apps {
				if as.Metrics().CounterValue("appserver.requests") > 0 {
					serving = i
					break
				}
			}
			if serving < 0 {
				t.Fatal("no app server saw the request yet")
			}
			go tp.apps[serving].Shutdown()
		}
		if _, err := conn.Write(body[off : off+piece]); err != nil {
			t.Fatalf("client write at %d: %v", off, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("client saw status %d, want 200", resp.StatusCode)
	}
	echoed, err := http1.ReadFullBody(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echoed, body) {
		t.Fatalf("replayed body corrupt: got %d bytes want %d", len(echoed), len(body))
	}
	if tp.origins[0].Metrics().CounterValue("origin.http.ppr_replays") == 0 {
		t.Fatal("no PPR replay recorded — restart missed the request?")
	}
}

// TestPPRExhaustedReturns500: when every app server is gone the request
// fails with a standard 500 (§4.4).
func TestPPRExhaustedReturns500(t *testing.T) {
	tp := startTopology(t, 1, 1)
	tp.apps[0].Close()
	resp := doRequest(t, tp.edge.Addr(VIPWeb), http1.NewRequest("GET", "/x", nil, 0))
	if resp.StatusCode != 500 {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
}

func dialMQTT(t *testing.T, tp *topology, userID string) *mqtt.Client {
	t.Helper()
	conn, err := net.DialTimeout("tcp", tp.edge.Addr(VIPMQTT), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := mqtt.NewClient(conn, userID, true)
	if _, err := c.Connect(0, 5*time.Second); err != nil {
		t.Fatalf("mqtt connect through edge: %v", err)
	}
	t.Cleanup(func() { c.Disconnect() })
	return c
}

func TestMQTTEndToEnd(t *testing.T) {
	tp := startTopology(t, 1, 1)
	c := dialMQTT(t, tp, "user-42")
	if err := c.Subscribe(5*time.Second, "notif/user-42"); err != nil {
		t.Fatal(err)
	}
	if n := tp.broker.Publish("notif/user-42", []byte("hello")); n != 1 {
		t.Fatalf("delivered %d", n)
	}
	select {
	case m := <-c.Messages():
		if string(m.Payload) != "hello" {
			t.Fatalf("payload = %q", m.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notification lost through the relay chain")
	}
	if err := c.Ping(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestDCROriginRestart is the §4.2 headline: the Origin relaying an MQTT
// connection restarts; the connection survives via re_connect through a
// second Origin; the end user sees no disconnect and keeps receiving.
func TestDCROriginRestart(t *testing.T) {
	tp := startTopology(t, 1, 2)
	c := dialMQTT(t, tp, "user-7")
	if err := c.Subscribe(5*time.Second, "notif/user-7"); err != nil {
		t.Fatal(err)
	}

	// Find the origin carrying the relay.
	serving := -1
	for i, o := range tp.origins {
		if o.Metrics().GaugeValue("origin.mqtt.active") > 0 {
			serving = i
			break
		}
	}
	if serving < 0 {
		t.Fatal("no origin is relaying the MQTT connection")
	}

	// Drain it (the restart). GOAWAY + reconnect_solicitation fire.
	tp.origins[serving].StartDraining()

	// The edge must splice through the other origin.
	deadline := time.Now().Add(5 * time.Second)
	for tp.edge.Metrics().CounterValue("edge.mqtt.reconnect.ack") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("splice never completed: edge counters:\n%s", tp.edge.Metrics().Dump())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The client connection must still be alive and receiving.
	select {
	case <-c.Done():
		t.Fatal("client connection dropped during origin restart")
	default:
	}
	if n := tp.broker.Publish("notif/user-7", []byte("post-restart")); n != 1 {
		t.Fatalf("post-restart publish delivered to %d sessions", n)
	}
	select {
	case m := <-c.Messages():
		if string(m.Payload) != "post-restart" {
			t.Fatalf("payload = %q", m.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-restart notification lost")
	}
	if err := c.Ping(5 * time.Second); err != nil {
		t.Fatalf("post-restart ping: %v", err)
	}
	if tp.broker.Metrics().CounterValue("mqtt.connect.resumed") == 0 {
		t.Fatal("broker never saw the resume")
	}
}

// TestDCRRefusedDropsConnection: when the broker has no context (dropped),
// re_connect is refused and the edge lets the client connection die so the
// client can re-connect organically.
func TestDCRRefusedDropsConnection(t *testing.T) {
	tp := startTopology(t, 1, 2)
	c := dialMQTT(t, tp, "user-gone")
	serving := -1
	for i, o := range tp.origins {
		if o.Metrics().GaugeValue("origin.mqtt.active") > 0 {
			serving = i
			break
		}
	}
	if serving < 0 {
		t.Fatal("no relaying origin")
	}
	// Kill the broker context so the resume must be refused.
	tp.broker.DropSession("user-gone")
	tp.origins[serving].StartDraining()

	select {
	case <-c.Done():
		// expected: client dropped, will re-connect the normal way
	case <-time.After(5 * time.Second):
		// The drain only solicits; the connection dies when the draining
		// origin terminates. Force that.
		tp.origins[serving].Close()
		select {
		case <-c.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("client connection survived a refused reconnect and a dead origin")
		}
	}
}

// TestOriginSocketTakeover: a full Origin restart with Socket Takeover
// under HTTP load — the tunnel listener is handed to a new instance and
// requests keep succeeding because re-dials land on the new process.
func TestOriginSocketTakeover(t *testing.T) {
	tp := startTopology(t, 1, 1)
	oldOrigin := tp.origins[0]
	path := filepath.Join(t.TempDir(), "origin-takeover.sock")
	if err := oldOrigin.ServeTakeover(path); err != nil {
		t.Fatal(err)
	}

	// Continuous load.
	stop := make(chan struct{})
	loadErr := make(chan error, 1)
	go func() {
		defer close(loadErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			conn, err := net.DialTimeout("tcp", tp.edge.Addr(VIPWeb), 2*time.Second)
			if err != nil {
				loadErr <- err
				return
			}
			if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/k", nil, 0)); err != nil {
				loadErr <- err
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			resp, err := http1.ReadResponse(bufio.NewReader(conn))
			if err != nil {
				loadErr <- err
				conn.Close()
				return
			}
			if resp.StatusCode != 200 {
				loadErr <- fmt.Errorf("status %d during takeover", resp.StatusCode)
				conn.Close()
				return
			}
			http1.ReadFullBody(resp.Body)
			conn.Close()
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(50 * time.Millisecond)

	// New instance takes over.
	newOrigin := New(Config{
		Name:        "origin-0-new",
		Role:        RoleOrigin,
		AppServers:  tp.appAddr,
		Brokers:     []string{tp.brAddr},
		DrainPeriod: 200 * time.Millisecond,
	}, nil)
	if _, err := newOrigin.TakeoverFrom(path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(newOrigin.Close)

	// Old instance finishes its drain and terminates.
	time.Sleep(100 * time.Millisecond)
	oldOrigin.Shutdown()
	time.Sleep(200 * time.Millisecond)

	close(stop)
	if err, ok := <-loadErr; ok && err != nil {
		t.Fatalf("request failed across origin takeover: %v", err)
	}
	// New instance must have served traffic.
	if newOrigin.Metrics().CounterValue("origin.http.requests") == 0 {
		t.Fatal("new origin never served a request")
	}
}

// TestEdgeSocketTakeover: same, restarting the Edge itself.
func TestEdgeSocketTakeover(t *testing.T) {
	tp := startTopology(t, 1, 1)
	path := filepath.Join(t.TempDir(), "edge-takeover.sock")
	if err := tp.edge.ServeTakeover(path); err != nil {
		t.Fatal(err)
	}
	addr := tp.edge.Addr(VIPWeb)

	stop := make(chan struct{})
	loadErr := make(chan error, 1)
	go func() {
		defer close(loadErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				loadErr <- err
				return
			}
			if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/static/logo", nil, 0)); err != nil {
				loadErr <- err
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			resp, err := http1.ReadResponse(bufio.NewReader(conn))
			if err != nil {
				loadErr <- err
				conn.Close()
				return
			}
			if resp.StatusCode != 200 {
				loadErr <- fmt.Errorf("status %d", resp.StatusCode)
				conn.Close()
				return
			}
			http1.ReadFullBody(resp.Body)
			conn.Close()
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(50 * time.Millisecond)

	newEdge := New(Config{
		Name:          "edge-0-new",
		Role:          RoleEdge,
		Origins:       tp.edge.cfg.Origins,
		DrainPeriod:   200 * time.Millisecond,
		StaticContent: tp.edge.cfg.StaticContent,
	}, nil)
	if _, err := newEdge.TakeoverFrom(path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(newEdge.Close)
	time.Sleep(100 * time.Millisecond)
	tp.edge.Shutdown()
	time.Sleep(200 * time.Millisecond)

	close(stop)
	if err, ok := <-loadErr; ok && err != nil {
		t.Fatalf("request failed across edge takeover: %v", err)
	}
	// Health checks must now be served by the new instance (step F).
	if err := katran.ProbeHC(newEdge.Addr(VIPHealth), time.Second); err != nil {
		t.Fatalf("health check after takeover: %v", err)
	}
}

// TestGoAwayOnDrainStopsNewTunnelStreams: a draining origin refuses new
// streams but completes in-flight ones.
func TestGoAwayOnDrainStopsNewTunnelStreams(t *testing.T) {
	tp := startTopology(t, 1, 2)
	// Prime a tunnel to each origin by issuing a couple of requests.
	for i := 0; i < 4; i++ {
		doRequest(t, tp.edge.Addr(VIPWeb), http1.NewRequest("GET", "/warm", nil, 0))
	}
	tp.origins[0].StartDraining()
	// Requests must keep succeeding (the edge fails over to origin 1 or a
	// fresh session).
	for i := 0; i < 5; i++ {
		resp := doRequest(t, tp.edge.Addr(VIPWeb), http1.NewRequest("GET", "/after-drain", nil, 0))
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
}

// TestPPRChunkedEndToEnd is the §5.2 chunked corner case through the full
// topology: the client uploads with chunked transfer encoding, the origin
// re-chunks toward the app server, the app server restarts mid-chunk, and
// the replay still reconstructs the byte-identical body.
func TestPPRChunkedEndToEnd(t *testing.T) {
	tp := startTopology(t, 2, 1)
	addr := tp.edge.Addr(VIPWeb)

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const pieces = 40
	piece := bytes.Repeat([]byte("c"), 100)
	var whole []byte
	if _, err := conn.Write([]byte("POST /chunked-up HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	restarted := false
	for i := 0; i < pieces; i++ {
		if !restarted && i == pieces/4 {
			serving := -1
			for j, as := range tp.apps {
				if as.Metrics().CounterValue("appserver.requests") > 0 {
					serving = j
					break
				}
			}
			if serving < 0 {
				t.Fatal("no app server saw the request")
			}
			go tp.apps[serving].Shutdown()
			restarted = true
		}
		// One chunk per piece, hand-framed.
		if _, err := fmt.Fprintf(conn, "%x\r\n%s\r\n", len(piece), piece); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		whole = append(whole, piece...)
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := conn.Write([]byte("0\r\n\r\n")); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	echoed, err := http1.ReadFullBody(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echoed, whole) {
		t.Fatalf("chunked replay corrupt: got %d bytes want %d", len(echoed), len(whole))
	}
	if tp.origins[0].Metrics().CounterValue("origin.http.ppr_replays") == 0 {
		t.Fatal("no PPR replay recorded")
	}
}
