package proxy

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"syscall"
	"time"

	"zdr/internal/bufpool"
	"zdr/internal/disrupt"
	"zdr/internal/h2t"
	"zdr/internal/http1"
	"zdr/internal/mqtt"
	"zdr/internal/netx"
	"zdr/internal/obs"
)

// tunnelEntry tracks one Edge→Origin tunnel session.
type tunnelEntry struct {
	addr string
	sess *h2t.Session
}

// alive reports whether the session can still open streams.
func (te *tunnelEntry) alive() bool {
	select {
	case <-te.sess.Done():
		return false
	default:
	}
	return !te.sess.Draining()
}

// originSessionFor returns a live tunnel session, dialing one if needed.
// exclude skips a specific origin address (the DCR "another healthy LB"
// requirement). Sessions that died or announced GOAWAY are replaced by a
// fresh dial — which, after a Socket Takeover, transparently lands on the
// new instance because the listening socket never closed.
func (p *Proxy) originSessionFor(exclude string) (*tunnelEntry, error) {
	// With a steering policy configured, the embedded katran LB decides
	// which origin serves this request; any steering failure (policy
	// error, dead pick) falls through to the legacy path below.
	if p.steerLB != nil {
		if te, err := p.steeredSession(exclude); err == nil {
			return te, nil
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("proxy: closed")
	}
	// Prefer an existing live session.
	for addr, te := range p.tunnels {
		if addr == exclude {
			continue
		}
		if te.alive() {
			p.mu.Unlock()
			return te, nil
		}
		delete(p.tunnels, addr)
	}
	// Round-robin over configured origins.
	candidates := make([]string, 0, len(p.cfg.Origins))
	for i := 0; i < len(p.cfg.Origins); i++ {
		addr := p.cfg.Origins[(p.rrOrigin+i)%len(p.cfg.Origins)]
		if addr != exclude {
			candidates = append(candidates, addr)
		}
	}
	p.rrOrigin++
	p.mu.Unlock()

	var lastErr error
	for _, addr := range candidates {
		te, err := p.tunnelTo(addr)
		if err != nil {
			lastErr = err
			continue
		}
		return te, nil
	}
	if lastErr == nil {
		lastErr = errors.New("proxy: no origin available")
	}
	return nil, lastErr
}

// steeredSession resolves one request's origin through the steering
// policy. Each request gets a fresh flow id, so the policy is free to
// rebalance request-by-request (sessions to each origin are still
// shared — steering picks the origin, not the connection).
func (p *Proxy) steeredSession(exclude string) (*tunnelEntry, error) {
	b, err := p.steerLB.Steer(p.steerSeq.Add(1))
	if err != nil {
		return nil, err
	}
	if b.Addr == exclude {
		return nil, errors.New("proxy: steered to excluded origin")
	}
	p.reg.Counter("edge.steer.picks").Inc()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("proxy: closed")
	}
	if te, ok := p.tunnels[b.Addr]; ok {
		if te.alive() {
			p.mu.Unlock()
			return te, nil
		}
		delete(p.tunnels, b.Addr)
	}
	p.mu.Unlock()
	return p.tunnelTo(b.Addr)
}

// tunnelTo dials a tunnel session to addr and registers it, keeping an
// existing live session if a concurrent dial raced us there.
func (p *Proxy) tunnelTo(addr string) (*tunnelEntry, error) {
	conn, err := p.dialUpstream(addr)
	if err != nil {
		return nil, err
	}
	te := &tunnelEntry{addr: addr, sess: h2t.NewSession(conn, true)}
	p.mu.Lock()
	if old, ok := p.tunnels[addr]; ok && old.alive() {
		// Raced with another dial; keep the existing one.
		p.mu.Unlock()
		te.sess.Close()
		return old, nil
	}
	p.tunnels[addr] = te
	p.mu.Unlock()
	p.reg.Counter("edge.tunnel.dials").Inc()
	return te, nil
}

// handleEdgeHTTPConn terminates a user HTTP connection (§2.2 step 1-2):
// cacheable content is answered directly (Direct Server Return), the rest
// is forwarded over the tunnel to an Origin. With Config.ConnLoop the
// connection parks in the epoll loop between requests instead of blocking
// a goroutine in ReadRequest — the idle keep-alive tier's cost model.
func (p *Proxy) handleEdgeHTTPConn(conn net.Conn) {
	if loop := p.cfg.ConnLoop; loop != nil {
		if rawConn, ok := conn.(syscall.Conn); ok {
			p.serveEdgeHTTPLoop(loop, conn, rawConn)
			return
		}
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		req, err := http1.ReadRequest(br)
		if err != nil {
			return
		}
		p.reg.Counter("edge.http.requests").Inc()
		if !p.serveEdgeRequest(conn, req) {
			return
		}
	}
}

// serveEdgeHTTPLoop parks conn in the event loop and serves one request
// batch per readiness wake. The handler returns (freeing the loop worker)
// whenever the connection goes idle with nothing buffered; a parked idle
// connection costs its watch record and this bufio.Reader, no goroutine.
func (p *Proxy) serveEdgeHTTPLoop(loop *netx.EventLoop, conn net.Conn, rawConn syscall.Conn) {
	br := bufio.NewReader(conn)
	w, err := loop.Watch(rawConn, func(w *netx.Watch, r netx.Readiness) {
		if r.HangUp {
			p.reapParked(w, conn)
			return
		}
		// Readable: serve the request that woke us plus anything
		// pipelined behind it. The deadline bounds a peer that stalls
		// mid-request so a loop worker is never held hostage.
		for {
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			req, err := http1.ReadRequest(br)
			conn.SetReadDeadline(time.Time{})
			if err != nil {
				p.reapParked(w, conn)
				return
			}
			p.reg.Counter("edge.http.requests").Inc()
			if !p.serveEdgeRequest(conn, req) {
				p.reapParked(w, conn)
				return
			}
			if br.Buffered() == 0 {
				break
			}
		}
		if w.Rearm() != nil {
			p.reapParked(w, conn)
		}
	})
	if err != nil {
		conn.Close()
		return
	}
	p.park(w, conn)
}

func (p *Proxy) serveEdgeRequest(conn net.Conn, req *http1.Request) bool {
	t0 := time.Now()
	p.gRIF.Inc()
	defer p.gRIF.Dec()
	defer func() { p.latHTTP.Observe(time.Since(t0).Seconds()) }()
	// Join (or start) the request trace: a client-supplied x-zdr-trace
	// makes this span a remote child; the context is forwarded over the
	// tunnel either way so the Origin and app-server spans stitch into
	// one trace.
	incoming := req.Header.Get(obs.TraceHeader)
	remote, _ := obs.ParseSpanContext(incoming)
	sp := p.cfg.Trace.StartSpan("edge.http", remote)
	sp.SetAttr("method", req.Method)
	sp.SetAttr("path", req.Target)
	defer sp.End()

	// Direct Server Return for cached content.
	if body, ok := p.cfg.StaticContent[req.Target]; ok && req.Method == "GET" {
		p.reg.Counter("edge.http.dsr").Inc()
		sp.SetAttr("dsr", "hit")
		resp := http1.NewResponse(200, bytes.NewReader(body), int64(len(body)))
		resp.Header.Set("X-Cache", "HIT")
		resp.Header.Set("Via", p.cfg.Name)
		_, err := http1.WriteResponse(conn, resp)
		return err == nil
	}

	hdr := map[string]string{
		":method": req.Method,
		":path":   req.Target,
	}
	if traceCtx := sp.Context().String(); traceCtx != "" {
		hdr[obs.TraceHeader] = traceCtx
	} else if incoming != "" {
		hdr[obs.TraceHeader] = incoming
	}
	if req.ContentLength >= 0 {
		hdr["content-length"] = strconv.FormatInt(req.ContentLength, 10)
	} else {
		hdr["content-length"] = "-1"
	}
	// A session can announce GOAWAY (its Origin started draining) between
	// our pick and the open; retry once on a fresh session rather than
	// failing the user request — the race is routine during releases.
	var st *h2t.Stream
	tunnelT0 := time.Now()
	for attempt := 0; attempt < 2; attempt++ {
		te, err := p.originSessionFor("")
		if err != nil {
			p.reg.Counter("edge.http.errors.no_origin").Inc()
			p.cfg.Ledger.Record(disrupt.KindReset, 0, VIPWeb, "edge:no-origin", err.Error())
			sp.Fail(err)
			http1.WriteResponse(conn, http1.NewResponse(503, nil, 0))
			return false
		}
		st, err = te.sess.OpenStream(hdr, req.Body == nil)
		if err == nil {
			break
		}
		st = nil
		if !errors.Is(err, h2t.ErrGoAway) {
			break
		}
		// The session announced GOAWAY between pick and open — routine
		// during a release; the retry absorbs it.
		p.cfg.Ledger.Record(disrupt.KindRetry, 0, VIPWeb, "", "goaway between pick and open")
	}
	if st == nil {
		p.reg.Counter("edge.http.errors.open_stream").Inc()
		p.cfg.Ledger.Record(disrupt.KindReset, 0, VIPWeb, "edge:open-stream", "")
		sp.Fail(errors.New("proxy: open stream failed"))
		http1.WriteResponse(conn, http1.NewResponse(502, nil, 0))
		return false
	}

	// Pump the request body upstream while watching for the response.
	// netx.Relay keeps this on the pooled-copy path (the stream side is
	// h2t-framed) while making the selection explicit and accounted.
	if req.Body != nil {
		done := make(chan error, 1)
		go func() {
			_, err := netx.Relay(st, req.Body)
			if err == nil {
				err = st.CloseWrite()
			}
			done <- err
		}()
		defer func() { <-done }()
	}

	respHdr, err := st.RecvHeaders(p.cfg.UpstreamResponseTimeout)
	p.latTunnel.Observe(time.Since(tunnelT0).Seconds())
	if err != nil {
		p.reg.Counter("edge.http.errors.upstream").Inc()
		p.cfg.Ledger.Record(disrupt.KindTimeout, 0, VIPWeb, "edge:upstream", err.Error())
		sp.Fail(err)
		st.Reset()
		http1.WriteResponse(conn, http1.NewResponse(504, nil, 0))
		return false
	}
	code, _ := strconv.Atoi(respHdr["status"])
	if code == 0 {
		code = 502
	}
	sp.SetAttr("status", strconv.Itoa(code))
	p.reg.Counter(fmt.Sprintf("edge.http.status.%d", code)).Inc()

	resp := http1.NewResponse(code, st, -1)
	if msg, ok := respHdr["status-message"]; ok {
		resp.StatusMessage = msg
	}
	for k, v := range respHdr {
		if k != "status" && k != "status-message" {
			resp.Header.Set(k, v)
		}
	}
	resp.Header.Set("Via", p.cfg.Name)
	if _, err := http1.WriteResponse(conn, resp); err != nil {
		st.Reset()
		return false
	}
	return true
}

// mqttRelay is the Edge-side state for one end-user MQTT connection: the
// terminated client conn plus the current tunnel stream carrying it. The
// stream is swapped atomically during Downstream Connection Reuse.
type mqttRelay struct {
	p          *Proxy
	userID     string
	clientConn net.Conn
	originAddr string

	mu     sync.Mutex
	stream *h2t.Stream
	gen    int
	closed bool
	// watch is the client conn's event-loop registration when the relay
	// runs in loop mode (Config.ConnLoop); nil in goroutine mode.
	watch *netx.Watch
}

func (r *mqttRelay) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	st := r.stream
	w := r.watch
	r.mu.Unlock()
	r.clientConn.Close()
	if w != nil {
		// Closing the conn silently dropped the kernel-side epoll
		// interest; retire the watch bookkeeping too.
		if r.p.unpark(w) {
			r.p.reg.Gauge("proxy.loop.parked").Dec()
		}
		w.Cancel()
	}
	if st != nil {
		st.Reset()
	}
	r.p.mu.Lock()
	delete(r.p.mqttConns, r)
	r.p.mu.Unlock()
	r.p.reg.Gauge("edge.mqtt.conns").Dec()
}

// forwardUpstream writes client bytes to the relay's current stream,
// retrying once on the (possibly spliced) stream when a DCR swap races
// the write. Returns false when the relay is finished.
func (r *mqttRelay) forwardUpstream(b []byte) bool {
	st, _ := r.currentStream()
	if st == nil {
		return false
	}
	if _, werr := st.Write(b); werr != nil {
		// Stream died mid-write; a splice may be in progress.
		time.Sleep(50 * time.Millisecond)
		st2, _ := r.currentStream()
		if st2 == nil || st2 == st {
			return false
		}
		if _, werr := st2.Write(b); werr != nil {
			return false
		}
	}
	return true
}

// currentStream returns the active stream and its generation.
func (r *mqttRelay) currentStream() (*h2t.Stream, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stream, r.gen
}

// swapStream installs a new stream (DCR splice), returning the old one.
func (r *mqttRelay) swapStream(st *h2t.Stream) *h2t.Stream {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.stream
	r.stream = st
	r.gen++
	return old
}

// handleEdgeMQTTConn terminates a user MQTT connection: it peeks the
// CONNECT to learn the user-id (§4.2: "Each end-user has a globally unique
// ID used to route the messages"), opens a tunnel stream to an Origin, and
// relays bytes both ways. On reconnect_solicitation it performs the DCR
// re_connect through another Origin and splices the streams.
func (p *Proxy) handleEdgeMQTTConn(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	connectPkt, err := mqtt.Decode(conn)
	if err != nil || connectPkt.Type != mqtt.CONNECT {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	userID := connectPkt.ClientID

	// Clients may carry a trace context in CONNECT properties; it rides
	// the tunnel stream headers so the Origin relay joins the same trace.
	remote, _ := obs.ParseSpanContext(connectPkt.Properties[obs.TraceHeader])
	sp := p.cfg.Trace.StartSpan("edge.mqtt.connect", remote)
	sp.SetAttr("user-id", userID)
	defer sp.End()

	te, err := p.originSessionFor("")
	if err != nil {
		sp.Fail(err)
		conn.Close()
		return
	}
	streamHdr := map[string]string{"proto": "mqtt", "user-id": userID}
	if traceCtx := sp.Context().String(); traceCtx != "" {
		streamHdr[obs.TraceHeader] = traceCtx
	} else if v := connectPkt.Properties[obs.TraceHeader]; v != "" {
		streamHdr[obs.TraceHeader] = v
	}
	st, err := te.sess.OpenStream(streamHdr, false)
	if err != nil {
		sp.Fail(err)
		conn.Close()
		return
	}
	// Replay the CONNECT into the tunnel so the broker sees it verbatim.
	var connectBuf bytes.Buffer
	mqtt.Encode(&connectBuf, connectPkt)
	if _, err := st.Write(connectBuf.Bytes()); err != nil {
		st.Reset()
		conn.Close()
		return
	}

	relay := &mqttRelay{p: p, userID: userID, clientConn: conn, originAddr: te.addr, stream: st}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		relay.clientConn.Close()
		st.Reset()
		return
	}
	p.mqttConns[relay] = struct{}{}
	p.mu.Unlock()
	p.reg.Counter("edge.mqtt.accepted").Inc()
	p.reg.Gauge("edge.mqtt.conns").Inc()

	// Upstream pump: client -> current stream. In loop mode the client
	// side parks in the epoll loop — a mostly-idle user costs a watch
	// record, not a goroutine blocked in Read (the downstream side keeps
	// its goroutine: it multiplexes stream data with DCR control frames).
	rawConn, canPark := conn.(syscall.Conn)
	if loop := p.cfg.ConnLoop; loop != nil && canPark {
		w, err := loop.Watch(rawConn, func(w *netx.Watch, r netx.Readiness) {
			if r.HangUp {
				relay.close()
				return
			}
			bp := bufpool.Get(32 << 10)
			defer bufpool.Put(bp)
			buf := *bp
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, err := conn.Read(buf)
			conn.SetReadDeadline(time.Time{})
			if n > 0 && !relay.forwardUpstream(buf[:n]) {
				relay.close()
				return
			}
			if err != nil {
				relay.close()
				return
			}
			if w.Rearm() != nil {
				relay.close()
			}
		})
		if err != nil {
			relay.close()
			return
		}
		relay.mu.Lock()
		relay.watch = w
		relay.mu.Unlock()
		p.park(w, conn)
	} else {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			bp := bufpool.Get(32 << 10)
			defer bufpool.Put(bp)
			buf := *bp
			for {
				n, err := conn.Read(buf)
				if n > 0 && !relay.forwardUpstream(buf[:n]) {
					break
				}
				if err != nil {
					break
				}
			}
			relay.close()
		}()
	}

	// Downstream pump + control watcher, restarted per stream generation.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.runMQTTDownstream(relay)
	}()
}

// runMQTTDownstream relays stream→client and watches for DCR control
// frames, re-arming itself each time the stream is swapped.
func (p *Proxy) runMQTTDownstream(relay *mqttRelay) {
	for {
		st, _ := relay.currentStream()
		if st == nil {
			return
		}
		if !p.pumpUntilSwap(relay, st) {
			relay.close()
			return
		}
	}
}

// pumpUntilSwap forwards downstream bytes and handles control frames for
// one stream generation. It returns true when the relay was spliced onto a
// new stream (caller re-arms), false when the relay is finished.
func (p *Proxy) pumpUntilSwap(relay *mqttRelay, st *h2t.Stream) bool {
	// Chunks carry pooled buffers across the channel: ownership transfers
	// to the receiving select arm, which must Put after the client write.
	type chunk struct {
		buf *[]byte
		n   int
	}
	dataCh := make(chan chunk)
	errCh := make(chan error, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			buf := bufpool.Get(8 << 10)
			n, err := st.Read(*buf)
			if n > 0 {
				select {
				case dataCh <- chunk{buf, n}:
					buf = nil // owned by the consumer now
				case <-done:
					bufpool.Put(buf)
					return
				}
			} else {
				bufpool.Put(buf)
				buf = nil
			}
			if err != nil {
				bufpool.Put(buf)
				select {
				case errCh <- err:
				case <-done:
				}
				return
			}
		}
	}()
	for {
		select {
		case c := <-dataCh:
			_, err := relay.clientConn.Write((*c.buf)[:c.n])
			bufpool.Put(c.buf)
			if err != nil {
				return false
			}
		case <-errCh:
			// Stream ended without a successful splice: the user is
			// disrupted (the woutDCR baseline measures exactly this).
			p.reg.Counter("edge.mqtt.stream_lost").Inc()
			p.cfg.Ledger.Record(disrupt.KindReset, 0, VIPMQTT, "dcr:stream-lost", relay.userID)
			return false
		case c := <-st.Controls():
			if c.Type == h2t.FrameReconnectSolicitation {
				p.reg.Counter("edge.mqtt.solicitations").Inc()
				// Payload: "<user-id>\n<trace-context>"; older senders
				// sent the bare user-id, so a missing second line just
				// means an untraced drain.
				peerTrace := ""
				if i := bytes.IndexByte(c.Payload, '\n'); i >= 0 {
					peerTrace = string(c.Payload[i+1:])
				}
				if p.reconnectThroughAnotherOrigin(relay, peerTrace) {
					return true
				}
				// Refused or failed: keep pumping the old stream until it
				// dies; the client will re-connect organically.
			}
		}
	}
}

// reconnectThroughAnotherOrigin performs the §4.2 DCR transaction:
// re_connect (with user-id) via a different healthy Origin; on connect_ack
// splice the relay onto the new stream; on connect_refuse give up. The
// dcr.reconnect span joins the draining Origin's trace via the context
// carried in the solicitation payload.
func (p *Proxy) reconnectThroughAnotherOrigin(relay *mqttRelay, peerTrace string) bool {
	remote, _ := obs.ParseSpanContext(peerTrace)
	sp := p.cfg.Trace.StartSpan("dcr.reconnect", remote)
	sp.SetAttr("user-id", relay.userID)
	defer sp.End()
	te, err := p.originSessionFor(relay.originAddr)
	if err != nil {
		// Fall back to any origin (the restarting one's new instance
		// also works — it is a different, healthy process).
		te, err = p.originSessionFor("")
		if err != nil {
			p.reg.Counter("edge.mqtt.reconnect.failed").Inc()
			p.cfg.Ledger.Record(disrupt.KindRetry, 0, VIPMQTT, "", "re_connect: no origin")
			sp.Fail(err)
			return false
		}
	}
	streamHdr := map[string]string{"proto": "mqtt-resume", "user-id": relay.userID}
	if traceCtx := sp.Context().String(); traceCtx != "" {
		streamHdr[obs.TraceHeader] = traceCtx
	} else if peerTrace != "" {
		streamHdr[obs.TraceHeader] = peerTrace
	}
	st, err := te.sess.OpenStream(streamHdr, false)
	if err != nil {
		p.reg.Counter("edge.mqtt.reconnect.failed").Inc()
		p.cfg.Ledger.Record(disrupt.KindRetry, 0, VIPMQTT, "", "re_connect: open stream failed")
		sp.Fail(err)
		return false
	}
	ackTimer := time.NewTimer(p.cfg.DCRAckTimeout)
	defer ackTimer.Stop()
	select {
	case c := <-st.Controls():
		switch c.Type {
		case h2t.FrameConnectAck:
			old := relay.swapStream(st)
			if old != nil {
				old.Reset()
			}
			relay.originAddr = te.addr
			p.reg.Counter("edge.mqtt.reconnect.ack").Inc()
			// The DCR splice: the user's connection survived its Origin's
			// restart by re-attaching through another path.
			p.cfg.Ledger.Record(disrupt.KindReattach, 0, VIPMQTT, "", relay.userID)
			sp.SetAttr("result", "ack")
			return true
		default:
			p.reg.Counter("edge.mqtt.reconnect.refused").Inc()
			p.cfg.Ledger.Record(disrupt.KindRetry, 0, VIPMQTT, "", "re_connect refused")
			sp.Fail(errors.New("proxy: re_connect refused"))
			st.Reset()
			return false
		}
	case <-ackTimer.C:
		p.reg.Counter("edge.mqtt.reconnect.timeout").Inc()
		p.cfg.Ledger.Record(disrupt.KindTimeout, 0, VIPMQTT, "dcr:reconnect-timeout", relay.userID)
		sp.Fail(errors.New("proxy: connect_ack timeout"))
		st.Reset()
		return false
	}
}

// MQTTConnCount returns the number of relayed MQTT connections.
func (p *Proxy) MQTTConnCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.mqttConns)
}
