package proxy

import (
	"net"
	"strings"
	"testing"
	"time"

	"zdr/internal/mqtt"
)

// TestMQTTBrokerUnreachable: when the Origin cannot dial the broker, the
// edge-terminated client connection is closed cleanly (no hang).
func TestMQTTBrokerUnreachable(t *testing.T) {
	origin := New(Config{
		Name:        "origin-x",
		Role:        RoleOrigin,
		Brokers:     []string{"127.0.0.1:1"}, // nothing listens here
		DialTimeout: 300 * time.Millisecond,
	}, nil)
	if err := origin.Listen(); err != nil {
		t.Fatal(err)
	}
	defer origin.Close()

	edge := New(Config{
		Name:    "edge-x",
		Role:    RoleEdge,
		Origins: []string{origin.Addr(VIPTunnel)},
	}, nil)
	if err := edge.Listen(); err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	conn, err := net.Dial("tcp", edge.Addr(VIPMQTT))
	if err != nil {
		t.Fatal(err)
	}
	c := mqtt.NewClient(conn, "user-x", true)
	if _, err := c.Connect(0, 3*time.Second); err == nil {
		t.Fatal("connect succeeded with no broker behind the origin")
	}
	if origin.Metrics().CounterValue("origin.mqtt.broker_dial_failed") == 0 {
		t.Fatal("broker dial failure not counted")
	}
}

// TestMQTTNoBrokersConfigured: an Origin with an empty broker ring resets
// the relay stream instead of panicking.
func TestMQTTNoBrokersConfigured(t *testing.T) {
	origin := New(Config{Name: "origin-nb", Role: RoleOrigin}, nil)
	if err := origin.Listen(); err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	edge := New(Config{Name: "edge-nb", Role: RoleEdge, Origins: []string{origin.Addr(VIPTunnel)}}, nil)
	if err := edge.Listen(); err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	conn, err := net.Dial("tcp", edge.Addr(VIPMQTT))
	if err != nil {
		t.Fatal(err)
	}
	c := mqtt.NewClient(conn, "user-nb", true)
	if _, err := c.Connect(0, 3*time.Second); err == nil {
		t.Fatal("connect succeeded with no brokers configured")
	}
}

// TestEdgeMQTTGarbageFirstPacket: a client that speaks garbage instead of
// CONNECT is dropped without crashing the edge.
func TestEdgeMQTTGarbageFirstPacket(t *testing.T) {
	edge := New(Config{Name: "edge-g", Role: RoleEdge, Origins: []string{"127.0.0.1:1"}}, nil)
	if err := edge.Listen(); err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	conn, err := net.Dial("tcp", edge.Addr(VIPMQTT))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")) // not MQTT
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if n, err := conn.Read(buf); err == nil && n > 0 {
		t.Fatalf("edge answered a garbage MQTT handshake with %q", buf[:n])
	}
	// The edge must still be healthy for real clients afterwards.
	conn2, err := net.Dial("tcp", edge.Addr(VIPMQTT))
	if err != nil {
		t.Fatal(err)
	}
	conn2.Close()
}

// TestHealthConnGarbage: a junk probe line gets no answer and leaves the
// proxy serving.
func TestHealthConnGarbage(t *testing.T) {
	edge := New(Config{Name: "edge-h", Role: RoleEdge, Origins: []string{"127.0.0.1:1"}}, nil)
	if err := edge.Listen(); err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	conn, err := net.Dial("tcp", edge.Addr(VIPHealth))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("WHAT\n"))
	conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	buf := make([]byte, 8)
	if n, _ := conn.Read(buf); n > 0 {
		t.Fatalf("health endpoint answered garbage with %q", buf[:n])
	}
}

// TestDoubleAdoptRejected: a proxy cannot adopt two listener sets.
func TestDoubleAdoptRejected(t *testing.T) {
	p := New(Config{Name: "p", Role: RoleEdge, Origins: []string{"127.0.0.1:1"}}, nil)
	if err := p.Listen(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Listen(); err == nil {
		t.Fatal("second Listen accepted")
	}
}

// TestServeTakeoverBeforeListen fails cleanly.
func TestServeTakeoverBeforeListen(t *testing.T) {
	p := New(Config{Name: "p2", Role: RoleEdge, Origins: []string{"127.0.0.1:1"}}, nil)
	defer p.Close()
	if err := p.ServeTakeover("/tmp/never-used.sock"); err == nil {
		t.Fatal("ServeTakeover before Listen accepted")
	}
}

// TestStartDrainingIdempotent: repeated drains are safe.
func TestStartDrainingIdempotent(t *testing.T) {
	p := New(Config{Name: "p3", Role: RoleEdge, Origins: []string{"127.0.0.1:1"}, DrainPeriod: 50 * time.Millisecond}, nil)
	if err := p.Listen(); err != nil {
		t.Fatal(err)
	}
	p.StartDraining()
	p.StartDraining()
	p.Shutdown()
	p.Shutdown()
	p.Close()
}

// TestStatsEndpoint: the per-instance monitoring signal (§6).
func TestStatsEndpoint(t *testing.T) {
	edge := New(Config{
		Name: "edge-stats", Role: RoleEdge, Origins: []string{"127.0.0.1:1"},
		StaticContent: map[string][]byte{"/s": []byte("x")},
		DrainPeriod:   50 * time.Millisecond,
	}, nil)
	if err := edge.Listen(); err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	stats := func() string {
		conn, err := net.Dial("tcp", edge.Addr(VIPHealth))
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		conn.Write([]byte("STATS\n"))
		buf := make([]byte, 64<<10)
		var out []byte
		for {
			n, err := conn.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		return string(out)
	}
	s := stats()
	if !strings.Contains(s, "instance edge-stats") || !strings.Contains(s, "status active") {
		t.Fatalf("stats = %q", s)
	}
	edge.StartDraining()
	// After drain the edge's own health handle is closed (HardRestart
	// semantics), so status must be read before; the draining counter is
	// visible in the pre-drain dump via proxy.drains on a second instance
	// that keeps its sockets (takeover case) — covered in quic tests.
}
