package proxy

import (
	"testing"
	"time"

	"zdr/internal/http1"
	"zdr/internal/katran"
)

// steeringTopology builds nOrigins origins and one edge steering across
// them with the given policy, probing fast enough for tests.
func steeringTopology(t *testing.T, nOrigins int, policy string) *topology {
	t.Helper()
	tp := startTopology(t, 1, nOrigins)

	originAddrs := make([]string, 0, nOrigins)
	healthAddrs := make([]string, 0, nOrigins)
	for _, o := range tp.origins {
		originAddrs = append(originAddrs, o.Addr(VIPTunnel))
		healthAddrs = append(healthAddrs, o.Addr(VIPHealth))
	}
	e := New(Config{
		Name:         "edge-steer",
		Role:         RoleEdge,
		Origins:      originAddrs,
		OriginHealth: healthAddrs,
		Steering:     policy,
		DrainPeriod:  200 * time.Millisecond,
		SteeringPrequal: katran.PrequalConfig{
			ProbeInterval: 10 * time.Millisecond,
			ProbeTimeout:  300 * time.Millisecond,
			Seed:          42,
		},
		// Keep active HC slow: the test must show the DRAIN ADVERTISEMENT
		// (heard on the persistent load-probe channel) steering flows
		// away, not health-check eviction.
		SteeringHCInterval: 10 * time.Second,
	}, nil)
	if err := e.Listen(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	tp.edge = e
	return tp
}

// TestLoadProbeAnswersPhase pins the LOAD wire protocol end to end: a
// proxy answers load probes on a persistent connection and advertises
// its release phase the moment draining starts — even though its
// listeners have already stopped accepting.
func TestLoadProbeAnswersPhase(t *testing.T) {
	o := New(Config{
		Name:        "origin-load",
		Role:        RoleOrigin,
		AppServers:  []string{"127.0.0.1:1"},
		DrainPeriod: time.Second,
		Generation:  7,
	}, nil)
	if err := o.Listen(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)

	// Capture the address up front: after the drain closes the accept
	// loops the VIP unbinds and Addr answers "".
	healthAddr := o.Addr(VIPHealth)

	p := &katran.HCProber{}
	defer p.Close()
	s, err := p.Load(healthAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if s.Phase != katran.PhaseServing || s.Generation != 7 {
		t.Fatalf("serving sample = %+v", s)
	}

	o.StartDraining()
	// Same persistent channel: a fresh dial would now be refused, but the
	// established probe connection hears the phase flip instantly.
	s, err = p.Load(healthAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Draining() {
		t.Fatalf("draining instance advertised %+v", s)
	}
	// And the one-shot health probe now fails (accept is closed), which
	// is exactly why the persistent channel is the faster drain signal.
	if err := p.Probe(healthAddr, 300*time.Millisecond); err == nil {
		t.Fatal("health probe to a draining instance should fail")
	}
}

func TestEdgeSteeringMaglevServes(t *testing.T) {
	tp := steeringTopology(t, 2, "maglev")
	for i := 0; i < 8; i++ {
		resp := doRequest(t, tp.edge.Addr(VIPWeb), http1.NewRequest("GET", "/api/feed", nil, 0))
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	if tp.edge.Metrics().CounterValue("edge.steer.picks") == 0 {
		t.Fatal("maglev steering recorded no picks")
	}
}

// TestEdgeSteeringPrequalAvoidsDrainingOrigin is the tentpole behaviour
// at the proxy tier: when an origin starts a release, its drain
// advertisement reaches the edge over the load-probe channel within one
// probe interval and new requests bleed off it — before any health
// check could have evicted it.
func TestEdgeSteeringPrequalAvoidsDrainingOrigin(t *testing.T) {
	tp := steeringTopology(t, 3, "prequal")
	edge := tp.edge

	// Warm up: probes populate the pools, requests flow.
	time.Sleep(80 * time.Millisecond)
	for i := 0; i < 12; i++ {
		resp := doRequest(t, edge.Addr(VIPWeb), http1.NewRequest("GET", "/api/feed", nil, 0))
		if resp.StatusCode != 200 {
			t.Fatalf("warmup %d: status %d", i, resp.StatusCode)
		}
	}

	victim := tp.origins[1]
	victim.StartDraining()
	time.Sleep(80 * time.Millisecond) // several probe intervals: the advertisement lands

	before := victim.Metrics().CounterValue("origin.http.requests")
	for i := 0; i < 24; i++ {
		resp := doRequest(t, edge.Addr(VIPWeb), http1.NewRequest("GET", "/api/feed", nil, 0))
		if resp.StatusCode != 200 {
			t.Fatalf("post-drain %d: status %d", i, resp.StatusCode)
		}
	}
	if got := victim.Metrics().CounterValue("origin.http.requests") - before; got != 0 {
		t.Fatalf("%d new requests landed on the draining origin", got)
	}
	if edge.Metrics().CounterValue("katran.prequal.drain_avoided") == 0 {
		t.Fatal("drain advertisement never influenced a pick")
	}
	// The active health checker was too slow to matter by design: the
	// avoidance above came from the drain advertisement alone.
	if edge.Metrics().CounterValue("katran.health.down") != 0 {
		t.Fatal("victim was health-evicted; test did not exercise the advertisement path")
	}
}
