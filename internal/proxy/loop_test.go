package proxy

import (
	"bufio"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"zdr/internal/http1"
	"zdr/internal/mqtt"
	"zdr/internal/netx"
)

// startLoopTopology is startTopology with the Edge serving its user VIPs
// from an epoll event loop (Config.ConnLoop).
func startLoopTopology(t *testing.T, nApps, nOrigins int) (*topology, *netx.EventLoop) {
	t.Helper()
	tp := startTopology(t, nApps, nOrigins)
	loop, err := netx.NewEventLoop(netx.EventLoopConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { loop.Close() })

	loopEdge := New(Config{
		Name:          "edge-loop",
		Role:          RoleEdge,
		Origins:       tp.edge.cfg.Origins,
		DrainPeriod:   200 * time.Millisecond,
		StaticContent: tp.edge.cfg.StaticContent,
		ConnLoop:      loop,
	}, nil)
	if err := loopEdge.Listen(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(loopEdge.Close)
	tp.edge.Close() // replace the goroutine-mode edge entirely
	tp.edge = loopEdge
	return tp, loop
}

// TestEdgeLoopHTTPKeepAlive: a keep-alive connection served from the loop
// answers repeated requests, parking between them.
func TestEdgeLoopHTTPKeepAlive(t *testing.T) {
	tp, loop := startLoopTopology(t, 1, 1)
	conn, err := net.DialTimeout("tcp", tp.edge.Addr(VIPWeb), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for i := 0; i < 3; i++ {
		if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/static/logo", nil, 0)); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		resp, err := http1.ReadResponse(br)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if _, err := http1.ReadFullBody(resp.Body); err != nil {
			t.Fatal(err)
		}
		// Idle gap: the conn must be parked, not held by a goroutine.
		time.Sleep(20 * time.Millisecond)
	}
	if loop.Watched() == 0 {
		t.Fatal("keep-alive connection not parked in the loop")
	}
	if got := tp.edge.Metrics().GaugeValue("proxy.loop.parked"); got == 0 {
		t.Fatal("parked gauge is 0")
	}
	if got := tp.edge.Metrics().CounterValue("edge.http.requests"); got != 3 {
		t.Fatalf("edge.http.requests = %d want 3", got)
	}
}

// TestEdgeLoopIdleConnsParkNotGoroutines parks a batch of idle keep-alive
// connections and checks the loop carries them all, then wakes every one
// and checks they still serve.
func TestEdgeLoopIdleConnsPark(t *testing.T) {
	tp, loop := startLoopTopology(t, 1, 1)
	const conns = 64
	clients := make([]net.Conn, 0, conns)
	for i := 0; i < conns; i++ {
		c, err := net.DialTimeout("tcp", tp.edge.Addr(VIPWeb), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	deadline := time.Now().Add(2 * time.Second)
	for loop.Watched() < conns {
		if time.Now().After(deadline) {
			t.Fatalf("Watched = %d, want %d", loop.Watched(), conns)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Wake them all.
	for i, c := range clients {
		if _, err := http1.WriteRequest(c, http1.NewRequest("GET", "/static/logo", nil, 0)); err != nil {
			t.Fatalf("conn %d write: %v", i, err)
		}
	}
	for i, c := range clients {
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		resp, err := http1.ReadResponse(bufio.NewReader(c))
		if err != nil {
			t.Fatalf("conn %d read: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("conn %d status %d", i, resp.StatusCode)
		}
		http1.ReadFullBody(resp.Body)
	}
}

// TestEdgeLoopMQTTRelay: the relay's client side parks in the loop while
// the full MQTT round-trip (via Origin tunnel and broker) still works.
func TestEdgeLoopMQTTRelay(t *testing.T) {
	tp, loop := startLoopTopology(t, 1, 1)
	conn, err := net.DialTimeout("tcp", tp.edge.Addr(VIPMQTT), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := mqtt.NewClient(conn, "loop-user", true)
	if _, err := c.Connect(30*time.Second, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	if err := c.Subscribe(2*time.Second, "feed/#"); err != nil {
		t.Fatal(err)
	}
	if n := tp.broker.Publish("feed/x", []byte("ping")); n != 1 {
		t.Fatalf("delivered %d want 1", n)
	}
	select {
	case m := <-c.Messages():
		if string(m.Payload) != "ping" {
			t.Fatalf("payload %q", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("notification not relayed")
	}
	if loop.Watched() == 0 {
		t.Fatal("relay client side not parked in loop")
	}
	if tp.edge.MQTTConnCount() != 1 {
		t.Fatalf("MQTTConnCount = %d", tp.edge.MQTTConnCount())
	}
}

// TestEdgeLoopSocketTakeover is the tentpole integration: an Edge serving
// parked idle connections from its loop hands its listeners to a new
// instance with its OWN event loop. Pre-takeover connections stay with
// the draining instance (and keep being served from its loop until
// terminate); post-takeover connections are accepted by the new instance
// and parked in the new loop — epoll interest never crosses the hand-off.
func TestEdgeLoopSocketTakeover(t *testing.T) {
	tp, oldLoop := startLoopTopology(t, 1, 1)
	path := filepath.Join(t.TempDir(), "loop-takeover.sock")
	if err := tp.edge.ServeTakeover(path); err != nil {
		t.Fatal(err)
	}
	addr := tp.edge.Addr(VIPWeb)

	// Park idle keep-alive conns on the OLD instance.
	const oldConns = 16
	oldClients := make([]net.Conn, 0, oldConns)
	for i := 0; i < oldConns; i++ {
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		oldClients = append(oldClients, c)
	}
	deadline := time.Now().Add(2 * time.Second)
	for oldLoop.Watched() < oldConns {
		if time.Now().After(deadline) {
			t.Fatalf("old loop Watched = %d, want %d", oldLoop.Watched(), oldConns)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The release: new instance, new loop.
	newLoop, err := netx.NewEventLoop(netx.EventLoopConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer newLoop.Close()
	newEdge := New(Config{
		Name:          "edge-loop-new",
		Role:          RoleEdge,
		Origins:       tp.edge.cfg.Origins,
		DrainPeriod:   200 * time.Millisecond,
		StaticContent: tp.edge.cfg.StaticContent,
		ConnLoop:      newLoop,
	}, nil)
	if _, err := newEdge.TakeoverFrom(path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(newEdge.Close)

	// Old parked connections still served by the draining instance's loop.
	for i, c := range oldClients {
		if _, err := http1.WriteRequest(c, http1.NewRequest("GET", "/static/logo", nil, 0)); err != nil {
			t.Fatalf("old conn %d write: %v", i, err)
		}
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		resp, err := http1.ReadResponse(bufio.NewReader(c))
		if err != nil {
			t.Fatalf("old conn %d: %v (draining instance must keep serving parked conns)", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("old conn %d status %d", i, resp.StatusCode)
		}
		http1.ReadFullBody(resp.Body)
	}

	// New connections land in the NEW instance's loop.
	newClients := make([]net.Conn, 0, 8)
	for i := 0; i < 8; i++ {
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		newClients = append(newClients, c)
	}
	deadline = time.Now().Add(2 * time.Second)
	for newLoop.Watched() < len(newClients) {
		if time.Now().After(deadline) {
			t.Fatalf("new loop Watched = %d, want %d", newLoop.Watched(), len(newClients))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, c := range newClients {
		if _, err := http1.WriteRequest(c, http1.NewRequest("GET", "/static/logo", nil, 0)); err != nil {
			t.Fatal(err)
		}
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		resp, err := http1.ReadResponse(bufio.NewReader(c))
		if err != nil {
			t.Fatalf("new conn %d: %v", i, err)
		}
		if got := resp.Header.Get("Via"); got != "edge-loop-new" {
			t.Fatalf("new conn %d served by %q, want edge-loop-new", i, got)
		}
		http1.ReadFullBody(resp.Body)
	}

	// Terminate the old instance: its parked conns are reaped.
	tp.edge.Shutdown()
	deadline = time.Now().Add(2 * time.Second)
	for oldLoop.Watched() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("old loop still has %d watches after terminate", oldLoop.Watched())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := tp.edge.Metrics().GaugeValue("proxy.loop.parked"); got != 0 {
		t.Fatalf("old instance parked gauge = %d after terminate", got)
	}
	// And the new instance still serves.
	resp := doRequest(t, addr, http1.NewRequest("GET", "/static/logo", nil, 0))
	if resp.StatusCode != 200 {
		t.Fatalf("post-shutdown status %d", resp.StatusCode)
	}
}

// TestEdgeLoopPipelinedRequests: multiple requests written back-to-back
// must all be answered in one readiness wake (the br.Buffered drain).
func TestEdgeLoopPipelinedRequests(t *testing.T) {
	tp, _ := startLoopTopology(t, 1, 1)
	conn, err := net.DialTimeout("tcp", tp.edge.Addr(VIPWeb), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Park first so the pipelined burst arrives as one wake.
	time.Sleep(50 * time.Millisecond)
	const n = 4
	for i := 0; i < n; i++ {
		if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/static/logo", nil, 0)); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		resp, err := http1.ReadResponse(br)
		if err != nil {
			t.Fatalf("pipelined response %d: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("pipelined response %d: status %d", i, resp.StatusCode)
		}
		if _, err := http1.ReadFullBody(resp.Body); err != nil {
			t.Fatal(err)
		}
	}
	if got := tp.edge.Metrics().CounterValue("edge.http.requests"); got != n {
		t.Fatalf("edge.http.requests = %d want %d", got, n)
	}
}

var _ = fmt.Sprintf // keep fmt for future debugging in this file
