package proxy

import (
	"bufio"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"zdr/internal/http1"
	"zdr/internal/katran"
)

// newEdgeFleet starts n static-content edges and a Katran LB probing them.
func newEdgeFleet(t *testing.T, n int) ([]*Proxy, *katran.LB) {
	t.Helper()
	lb := katran.New("l4", katran.Config{
		ProbeTimeout:  300 * time.Millisecond,
		FlowCacheSize: 1 << 14,
	}, nil)
	t.Cleanup(lb.Close)
	var edges []*Proxy
	for i := 0; i < n; i++ {
		e := New(Config{
			Name:          fmt.Sprintf("edge-%d", i),
			Role:          RoleEdge,
			Origins:       []string{"127.0.0.1:1"},
			DrainPeriod:   300 * time.Millisecond,
			StaticContent: map[string][]byte{"/s": []byte("static")},
		}, nil)
		if err := e.Listen(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		edges = append(edges, e)
		lb.AddBackend(katran.Backend{
			Name:       e.Name(),
			Addr:       e.Addr(VIPWeb),
			HealthAddr: e.Addr(VIPHealth),
		}, false)
	}
	lb.ProbeOnce() // admit everyone
	if got := len(lb.HealthyBackends()); got != n {
		t.Fatalf("only %d/%d edges admitted", got, n)
	}
	return edges, lb
}

func steerAndGet(t *testing.T, lb *katran.LB, flow uint64) (string, error) {
	t.Helper()
	addr, err := lb.SteerAddr(flow)
	if err != nil {
		return "", err
	}
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/s", nil, 0)); err != nil {
		return "", err
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return "", err
	}
	if _, err := http1.ReadFullBody(resp.Body); err != nil {
		return "", err
	}
	return resp.Header.Get("Via"), nil
}

// TestKatranEvictsHardRestartingEdge: the §2.3 behaviour — a draining
// instance fails health checks and leaves the routing ring; its flows are
// re-steered to survivors.
func TestKatranEvictsHardRestartingEdge(t *testing.T) {
	edges, lb := newEdgeFleet(t, 3)

	// Find a flow owned by edge-1.
	var victim uint64
	found := false
	for f := uint64(0); f < 1000 && !found; f++ {
		b, err := lb.Steer(f)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name == "edge-1" {
			victim, found = f, true
		}
	}
	if !found {
		t.Fatal("edge-1 owns no flows")
	}
	if via, err := steerAndGet(t, lb, victim); err != nil || via != "edge-1" {
		t.Fatalf("pre-restart: via=%q err=%v", via, err)
	}

	// HardRestart: drain makes health answer DRAIN / connection refused.
	edges[1].StartDraining()
	lb.ProbeOnce()
	if got := len(lb.HealthyBackends()); got != 2 {
		t.Fatalf("healthy = %d, want 2 after eviction", got)
	}
	via, err := steerAndGet(t, lb, victim)
	if err != nil {
		t.Fatalf("flow not re-steered after eviction: %v", err)
	}
	if via == "edge-1" {
		t.Fatal("flow still steered to the draining edge")
	}
}

// TestKatranNeverNoticesZDRRestart: the headline L4 property — the restart
// is invisible to the health checker, the instance never leaves the ring,
// and its flows keep landing on the same (new-generation) backend.
func TestKatranNeverNoticesZDRRestart(t *testing.T) {
	edges, lb := newEdgeFleet(t, 3)
	path := filepath.Join(t.TempDir(), "edge1.sock")
	if err := edges[1].ServeTakeover(path); err != nil {
		t.Fatal(err)
	}

	var victim uint64
	found := false
	for f := uint64(0); f < 1000 && !found; f++ {
		b, _ := lb.Steer(f)
		if b.Name == "edge-1" {
			victim, found = f, true
		}
	}
	if !found {
		t.Fatal("edge-1 owns no flows")
	}

	// New generation takes over while the LB keeps probing.
	next := New(Config{
		Name:          "edge-1-gen2",
		Role:          RoleEdge,
		Origins:       []string{"127.0.0.1:1"},
		DrainPeriod:   300 * time.Millisecond,
		StaticContent: map[string][]byte{"/s": []byte("static")},
	}, nil)
	if _, err := next.TakeoverFrom(path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(next.Close)

	// Probe repeatedly through the restart window: never evicted.
	for i := 0; i < 5; i++ {
		lb.ProbeOnce()
		if got := len(lb.HealthyBackends()); got != 3 {
			t.Fatalf("probe %d: healthy = %d — Katran noticed the ZDR restart", i, got)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The victim flow keeps hitting the same backend slot, now served by
	// the new generation.
	via, err := steerAndGet(t, lb, victim)
	if err != nil {
		t.Fatal(err)
	}
	if via != "edge-1-gen2" {
		t.Fatalf("flow served by %q, want the new generation on the same VIP", via)
	}
	if lb.Metrics().CounterValue("katran.health.down") != 0 {
		t.Fatal("health-down transition recorded during a ZDR restart")
	}
}
