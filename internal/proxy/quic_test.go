package proxy

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"zdr/internal/quicx"
)

func startQUICEdge(t *testing.T, name string) *Proxy {
	t.Helper()
	p := New(Config{
		Name:        name,
		Role:        RoleEdge,
		Origins:     []string{"127.0.0.1:1"},
		EnableQUIC:  true,
		DrainPeriod: 300 * time.Millisecond,
		StaticContent: map[string][]byte{
			"/video/seg1": []byte("segment-one-bytes"),
		},
	}, nil)
	if err := p.Listen(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestEdgeQUICVIPServes(t *testing.T) {
	edge := startQUICEdge(t, "edge-q")
	addr := edge.Addr(VIPQUIC)
	if addr == "" {
		t.Fatal("QUIC VIP not bound")
	}
	c, err := quicx.Dial(addr, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Open([]byte("/video/seg1"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "edge-q|segment-one-bytes" {
		t.Fatalf("reply = %q", reply)
	}
	reply, err = c.Send([]byte("/nope"), 2*time.Second)
	if err != nil || string(reply) != "edge-q|404" {
		t.Fatalf("reply=%q err=%v", reply, err)
	}
}

// TestEdgeQUICSurvivesTakeover is the §4.1 UDP story at the proxy level:
// a flow opened on generation 1 keeps being served by generation 1 during
// its drain (user-space routing via the forward address carried in the
// takeover manifest), while new flows land on generation 2 — all on one
// UDP socket that never closes.
func TestEdgeQUICSurvivesTakeover(t *testing.T) {
	gen1 := startQUICEdge(t, "edge-gen1")
	addr := gen1.Addr(VIPQUIC)
	path := filepath.Join(t.TempDir(), "edge-quic.sock")
	if err := gen1.ServeTakeover(path); err != nil {
		t.Fatal(err)
	}

	// Open a flow on generation 1.
	c1, err := quicx.Dial(addr, 101)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if reply, err := c1.Open([]byte("/video/seg1"), 2*time.Second); err != nil || !strings.HasPrefix(string(reply), "edge-gen1|") {
		t.Fatalf("gen1 open: %q %v", reply, err)
	}

	// Generation 2 takes over (manifest carries the forward address).
	gen2 := New(Config{
		Name:        "edge-gen2",
		Role:        RoleEdge,
		Origins:     []string{"127.0.0.1:1"},
		EnableQUIC:  true,
		DrainPeriod: 300 * time.Millisecond,
		StaticContent: map[string][]byte{
			"/video/seg1": []byte("segment-one-bytes"),
		},
	}, nil)
	if _, err := gen2.TakeoverFrom(path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gen2.Close)

	// Wait until gen1 is draining (OnDrainStart fires asynchronously).
	deadline := time.Now().Add(2 * time.Second)
	for !gen1.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("gen1 never started draining")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The old flow must still be answered by generation 1.
	served := false
	for i := 0; i < 20; i++ {
		reply, err := c1.Send([]byte("/video/seg1"), 500*time.Millisecond)
		if err == nil {
			if !strings.HasPrefix(string(reply), "edge-gen1|") {
				t.Fatalf("old flow served by %q, want gen1", reply)
			}
			served = true
			break
		}
	}
	if !served {
		t.Fatal("old flow starved during drain")
	}

	// A new flow must land on generation 2.
	c2, err := quicx.Dial(addr, 202)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	served = false
	for i := 0; i < 20; i++ {
		reply, err := c2.Open([]byte("/video/seg1"), 500*time.Millisecond)
		if err == nil {
			if !strings.HasPrefix(string(reply), "edge-gen2|") {
				t.Fatalf("new flow served by %q, want gen2", reply)
			}
			served = true
			break
		}
	}
	if !served {
		t.Fatal("new flow never served by gen2")
	}

	// Nothing was mis-routed on either side.
	if n := gen1.Metrics().CounterValue("quicx.misrouted") + gen2.Metrics().CounterValue("quicx.misrouted"); n != 0 {
		t.Fatalf("%d packets misrouted across the takeover", n)
	}
	if gen2.Metrics().CounterValue("quicx.forwarded") == 0 {
		t.Fatal("user-space forwarding never engaged")
	}
}
