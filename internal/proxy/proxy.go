// Package proxy implements Proxygen, the L7 load balancer at the heart of
// the paper's traffic infrastructure (§2.1): reverse proxy for user
// traffic, tunnel endpoint between Edge and Origin, MQTT relay, and the
// integration point for all three Zero Downtime Release mechanisms:
//
//   - Socket Takeover (§4.1): a proxy's listening sockets (web, mqtt,
//     tunnel, health — its VIPs) live in a takeover.ListenerSet that a new
//     instance can receive over a UNIX socket; the old instance then
//     drains. The health VIP transfers too, which is how health-check
//     responsibility moves to the new instance (Fig. 5 step F) and why
//     Katran never notices the restart.
//   - Downstream Connection Reuse (§4.2): an Origin proxy relays MQTT
//     between tunnel streams and brokers chosen by consistent-hashing the
//     user-id; on restart it solicits the Edge to re_connect through
//     another Origin path, and the broker splices the session — the end
//     user's connection never drops.
//   - Partial Post Replay (§4.3): the Origin proxy is the "downstream
//     Proxygen" that receives 379 hand-backs from a restarting app server
//     and replays the rebuilt request to a healthy one.
//
// One Proxy value runs in either the Edge or the Origin role; the roles
// share lifecycle, health checking and takeover plumbing.
package proxy

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"zdr/internal/consistent"
	"zdr/internal/disrupt"
	"zdr/internal/faults"
	"zdr/internal/katran"
	"zdr/internal/metrics"
	"zdr/internal/netx"
	"zdr/internal/obs"
	"zdr/internal/quicx"
	"zdr/internal/takeover"
)

// Role selects Edge or Origin behaviour.
type Role int

// Roles.
const (
	RoleEdge Role = iota
	RoleOrigin
)

// VIP names used in the takeover listener set.
const (
	VIPWeb    = "web"    // edge: user HTTP
	VIPMQTT   = "mqtt"   // edge: user MQTT
	VIPTunnel = "tunnel" // origin: edge-facing h2t tunnel
	VIPQUIC   = "quic"   // edge: QUIC-style UDP (optional)
	VIPHealth = "health" // both: Katran health checks
)

// Config configures a proxy instance.
type Config struct {
	// Name identifies the instance (metrics, Via headers).
	Name string
	// Role is RoleEdge or RoleOrigin.
	Role Role

	// Origins lists Origin tunnel addresses (Edge role).
	Origins []string
	// AppServers lists app-server addresses (Origin role).
	AppServers []string
	// Brokers lists MQTT broker addresses (Origin role). Broker choice is
	// by consistent hash of user-id so every Origin resolves a user to
	// the same broker (§4.2).
	Brokers []string

	// PPRRetries bounds replay attempts; the paper's production value is
	// 10 (§4.4). Default 10.
	PPRRetries int
	// DrainPeriod is how long a draining instance serves existing
	// connections (paper: 20 minutes for Proxygen; tests use much less).
	// Default 2s.
	DrainPeriod time.Duration
	// StaticContent maps request targets the Edge serves directly from
	// cache (Direct Server Return, §2.2 step 2).
	StaticContent map[string][]byte
	// DialTimeout bounds upstream dials. Default 2s.
	DialTimeout time.Duration
	// EnableQUIC adds a QUIC-style UDP VIP at the Edge, served by a
	// connection-ID-routed datagram server (internal/quicx). During a
	// Socket Takeover the UDP socket transfers like the TCP listeners,
	// and packets belonging to the draining instance's flows are routed
	// back to it in user space (§4.1).
	EnableQUIC bool
	// VIPAddrs optionally pins VIP names to explicit bind addresses
	// (default: ephemeral ports on 127.0.0.1). Used by experiments that
	// model traditional restart-in-place, where the replacement instance
	// must rebind the same address.
	VIPAddrs map[string]string

	// DCRAckTimeout bounds how long a DCR re_connect waits for the
	// broker's connect_ack / connect_refuse before the relay gives up
	// (§4.2). Default 5s; chaos tests tighten it.
	DCRAckTimeout time.Duration
	// UpstreamResponseTimeout bounds the wait for an upstream response:
	// the app-server reply at the Origin and the tunnel response headers
	// at the Edge. Default 30s.
	UpstreamResponseTimeout time.Duration
	// RetryBackoff paces upstream retry attempts after a dial or
	// transport error (the §4.4 retry path). PPR replays after a 379
	// hand-back are not delayed — the app server asked for them. The
	// zero value defaults to 5ms base, doubling, 200ms cap.
	RetryBackoff faults.Backoff

	// Faults optionally injects deterministic faults into upstream dials
	// (edge→origin tunnel, origin→app-server, origin→broker) and the
	// connections they produce. Nil disables injection.
	Faults *faults.Injector
	// AcceptFaults optionally injects deterministic faults into
	// connections accepted on this proxy's TCP VIPs and datagrams on its
	// UDP VIP. Nil disables injection.
	AcceptFaults *faults.Injector

	// Trace optionally records release-path spans (takeover hand-offs,
	// drains, DCR reconnects, PPR replays, per-request spans) and joins
	// remote traces arriving in x-zdr-trace headers. Nil disables
	// tracing; propagation of incoming contexts still works.
	Trace *obs.Tracer

	// ReadyGate, when non-nil, is consulted by the receiver side of a
	// ProtoDrainUndo hand-off after COMMIT, alongside the proxy's own
	// serving checks, before the READY frame releases the old instance's
	// lease. Returning an error steps this instance down and un-drains
	// the old one. Chaos tests use it to wedge the post-commit window.
	ReadyGate func() error
	// TakeoverReadyTimeout bounds the sender-side post-commit wait for
	// the receiver's READY frame; zero means takeover.DefaultReadyTimeout.
	TakeoverReadyTimeout time.Duration

	// ConnLoop, when non-nil, serves this instance's idle-heavy Edge
	// connections from an epoll readiness loop (DESIGN.md §11): HTTP
	// keep-alive connections park between requests and MQTT relays park
	// their client side, each costing a watch record instead of a blocked
	// goroutine. The loop is owned by the caller and is per-process state:
	// after a Socket Takeover the receiving instance registers adopted
	// traffic in its OWN loop — epoll interest never crosses the hand-off.
	// Fault-wrapped accepts (AcceptFaults) fall back to goroutine-per-conn.
	ConnLoop *netx.EventLoop

	// Tuning, when non-nil, applies socket options (TCP_NODELAY,
	// TCP_QUICKACK, SO_BUSY_POLL, buffer sizes) to every connection this
	// proxy accepts on its TCP VIPs and every upstream connection it
	// dials. Best-effort: a setsockopt failure is counted
	// (proxy.tune.errors) and the connection serves untuned. Fault-
	// wrapped conns hide their descriptor and are skipped by design.
	Tuning *netx.ConnTuning

	// Steering selects the Edge's origin-steering policy: "" keeps the
	// legacy prefer-alive-then-round-robin behaviour, "maglev" steers
	// requests through an embedded katran LB with placement-only picks,
	// and "prequal" adds drain-aware adaptive steering — probe pools
	// over the origins' health VIPs hear each origin's requests-in-
	// flight, latency and release phase, and new flows bleed off a
	// draining generation before its drain timer bites.
	Steering string
	// OriginHealth lists the origins' health-VIP addresses, parallel to
	// Origins. Required for "prequal" (the load probes ride the health
	// VIP); with "maglev" it additionally enables active health checks
	// on the embedded LB.
	OriginHealth []string
	// SteeringPrequal tunes PolicyPrequal when Steering is "prequal";
	// the zero value uses the katran defaults.
	SteeringPrequal katran.PrequalConfig
	// SteeringHCInterval paces the embedded LB's health checks over
	// OriginHealth (default 500ms).
	SteeringHCInterval time.Duration

	// Ledger, when non-nil, receives connection-level disruption events:
	// accepts, hand-offs, drains, undos, terminal resets/timeouts with
	// their (cause, phase, generation) attribution, and — when Faults /
	// AcceptFaults are set — one Fault event per injected fault (the
	// injectors' observers are claimed by New, so give each proxy its own
	// injectors when ledger attribution matters). Nil disables recording.
	Ledger *disrupt.Ledger
	// Generation identifies this process generation in ledger
	// attribution and release-phase stamps.
	Generation int
}

func (c *Config) fill() {
	if c.PPRRetries <= 0 {
		c.PPRRetries = 10
	}
	if c.DrainPeriod <= 0 {
		c.DrainPeriod = 2 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.DCRAckTimeout <= 0 {
		c.DCRAckTimeout = 5 * time.Second
	}
	if c.UpstreamResponseTimeout <= 0 {
		c.UpstreamResponseTimeout = 30 * time.Second
	}
	if c.RetryBackoff.Base <= 0 {
		c.RetryBackoff.Base = 5 * time.Millisecond
	}
	if c.RetryBackoff.Max <= 0 {
		c.RetryBackoff.Max = 200 * time.Millisecond
	}
	if c.SteeringHCInterval <= 0 {
		c.SteeringHCInterval = 500 * time.Millisecond
	}
}

// Proxy is one Proxygen instance.
type Proxy struct {
	cfg Config
	reg *metrics.Registry

	set *takeover.ListenerSet

	mu       sync.Mutex
	draining bool
	closed   bool
	// awaitingReady is true between a committed ProtoDrainUndo hand-off
	// and its lease resolution (READY received or undo) — the
	// "committed-awaiting-ready" state of the release state machine.
	awaitingReady bool
	// edge state
	tunnels   map[string]*tunnelEntry // origin addr -> session
	rrOrigin  int
	mqttConns map[*mqttRelay]struct{}
	// origin state
	srvSessions map[*originSession]struct{}
	rrApp       int
	brokerRing  *consistent.Ring

	// quic is the Edge's UDP stack (nil unless EnableQUIC).
	quic *quicx.Server

	// connSeq hands out per-instance connection ordinals for ledger
	// attribution of accepted connections.
	connSeq atomic.Uint64
	// latHTTP is the hot-path request-latency histogram
	// (edge.http.latency at the Edge, origin.http.latency at the Origin).
	latHTTP *metrics.AtomicHistogram
	// latTunnel measures the Edge's tunnel round trip (open stream →
	// response headers), isolating upstream time from client time.
	latTunnel *metrics.AtomicHistogram
	// latQUIC measures the Edge's QUIC-style DSR handler.
	latQUIC *metrics.AtomicHistogram
	// gRIF counts requests in flight — the Prequal load signal this
	// instance advertises in its LOAD probe answers.
	gRIF *metrics.Gauge

	// steerLB steers edge→origin placement when Config.Steering is set;
	// steerSeq hands each fresh request its flow id.
	steerLB  *katran.LB
	steerSeq atomic.Uint64

	// loadConns tracks persistent LOAD probe connections so terminate
	// can close them — their handler goroutines otherwise block in read
	// and would hang the drain's wg.Wait.
	loadConnsMu sync.Mutex
	loadConns   map[net.Conn]struct{}

	// parked tracks event-loop watches for connections idling in
	// Config.ConnLoop, with the conn each watch guards: terminate must
	// close them (no goroutine holds them) and retire the bookkeeping.
	parkedMu sync.Mutex
	parked   map[*netx.Watch]net.Conn

	takeSrv   *takeover.Server
	drainSpan *obs.Span
	drainCh   chan struct{}
	wg        sync.WaitGroup
}

// New creates a proxy. reg may be nil.
func New(cfg Config, reg *metrics.Registry) *Proxy {
	cfg.fill()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	p := &Proxy{
		cfg:         cfg,
		reg:         reg,
		tunnels:     make(map[string]*tunnelEntry),
		mqttConns:   make(map[*mqttRelay]struct{}),
		srvSessions: make(map[*originSession]struct{}),
		parked:      make(map[*netx.Watch]net.Conn),
		loadConns:   make(map[net.Conn]struct{}),
		drainCh:     make(chan struct{}),
	}
	p.gRIF = reg.Gauge("proxy.rif")
	if cfg.Role == RoleOrigin {
		p.brokerRing = consistent.NewRing(100, cfg.Brokers...)
		p.latHTTP = reg.AtomicHistogram("origin.http.latency")
	} else {
		p.latHTTP = reg.AtomicHistogram("edge.http.latency")
		p.latTunnel = reg.AtomicHistogram("edge.tunnel.latency")
		p.latQUIC = reg.AtomicHistogram("edge.quic.latency")
		if cfg.Steering != "" && len(cfg.Origins) > 0 {
			p.steerLB = p.newSteerLB(reg)
		}
	}
	if cfg.Ledger != nil {
		// The release-phase stamp moves when this generation actually takes
		// the serving role (Listen for a fresh bind, TakeoverFromWith after
		// READY), not at construction: a ledger shared across generations
		// must keep attributing to the generation that is really serving.
		// Mirror every injected fault into the ledger so the chaos suite
		// can reconcile injected vs observed failures exactly.
		observe := func(op faults.Op) {
			cfg.Ledger.Record(disrupt.KindFault, 0, "", "injected:"+op.String(), "")
		}
		cfg.Faults.SetObserver(observe)
		if cfg.AcceptFaults != cfg.Faults {
			cfg.AcceptFaults.SetObserver(observe)
		}
	}
	return p
}

// Metrics returns the proxy's registry.
func (p *Proxy) Metrics() *metrics.Registry { return p.reg }

// Name returns the instance name.
func (p *Proxy) Name() string { return p.cfg.Name }

// vipsForRole returns the VIPs this role binds (port 0 = ephemeral unless
// pinned in overrides).
func vipsForRole(role Role, host string, enableQUIC bool, overrides map[string]string) []takeover.VIP {
	addr := func(name string) string {
		if a, ok := overrides[name]; ok {
			return a
		}
		return host + ":0"
	}
	var names []string
	switch role {
	case RoleEdge:
		names = []string{VIPWeb, VIPMQTT, VIPHealth}
	default:
		names = []string{VIPTunnel, VIPHealth}
	}
	vips := make([]takeover.VIP, 0, len(names)+1)
	for _, n := range names {
		vips = append(vips, takeover.VIP{Name: n, Network: takeover.NetworkTCP, Addr: addr(n)})
	}
	if role == RoleEdge && enableQUIC {
		vips = append(vips, takeover.VIP{Name: VIPQUIC, Network: takeover.NetworkUDP, Addr: addr(VIPQUIC)})
	}
	return vips
}

// Listen binds fresh VIP sockets on 127.0.0.1 and starts serving.
func (p *Proxy) Listen() error {
	set, err := takeover.Listen(vipsForRole(p.cfg.Role, "127.0.0.1", p.cfg.EnableQUIC, p.cfg.VIPAddrs)...)
	if err != nil {
		return err
	}
	if err := p.Adopt(set); err != nil {
		return err
	}
	p.syncLedgerPhase() // fresh bind: this generation is the serving one
	return nil
}

// tcpHandler returns the connection handler a named TCP VIP is served
// with in this proxy's role, or nil for VIPs the role does not serve. It
// is the single source of truth for VIP→handler wiring, shared by Adopt
// (initial arming) and undoDrain (re-arming after a drain-undo).
func (p *Proxy) tcpHandler(name string) func(net.Conn) {
	switch name {
	case VIPHealth:
		return p.handleHealthConn
	case VIPWeb:
		if p.cfg.Role == RoleEdge {
			return p.handleEdgeHTTPConn
		}
	case VIPMQTT:
		if p.cfg.Role == RoleEdge {
			return p.handleEdgeMQTTConn
		}
	case VIPTunnel:
		if p.cfg.Role == RoleOrigin {
			return p.handleTunnelConn
		}
	}
	return nil
}

// Adopt starts serving on an existing listener set — either freshly bound
// or received through Socket Takeover.
func (p *Proxy) Adopt(set *takeover.ListenerSet) error {
	p.mu.Lock()
	if p.set != nil {
		p.mu.Unlock()
		return errors.New("proxy: already serving")
	}
	p.set = set
	p.mu.Unlock()

	for _, v := range set.VIPs() {
		if v.Network != takeover.NetworkTCP {
			continue
		}
		handler := p.tcpHandler(v.Name)
		if handler == nil {
			continue
		}
		if ln := set.TCP(v.Name); ln != nil {
			p.serveLoop(v.Name, ln, handler)
		}
	}
	if p.cfg.Role == RoleEdge {
		if pc := set.UDP(VIPQUIC); pc != nil {
			// The shared *net.UDPConn stays in the listener set for FD
			// hand-off; the serving stack sees it through the optional
			// fault-injecting PacketConn wrapper.
			q := quicx.NewServer(p.cfg.Name+"/quic", p.cfg.AcceptFaults.PacketConn(pc), p.quicHandler, p.reg)
			p.mu.Lock()
			p.quic = q
			p.mu.Unlock()
			q.Start()
		}
	}
	return nil
}

// quicHandler serves the QUIC-style VIP: the payload is a request target
// resolved against the Edge's cached content (Direct Server Return over
// UDP). The instance name is prefixed so experiments can attribute which
// process served a flow across a takeover.
func (p *Proxy) quicHandler(conn quicx.ConnID, payload []byte) []byte {
	t0 := time.Now()
	p.reg.Counter("edge.quic.requests").Inc()
	resp := []byte(p.cfg.Name + "|404")
	if body, ok := p.cfg.StaticContent[string(payload)]; ok {
		resp = append([]byte(p.cfg.Name+"|"), body...)
	}
	// Latency lands in the proxy-level handler, not quicx's packet loop:
	// the datagram hot path (HandleData) stays untouched.
	p.latQUIC.Observe(time.Since(t0).Seconds())
	return resp
}

// dialUpstream dials an upstream address (origin tunnel, app server,
// broker) through the optional fault injector; with no injector it is
// exactly net.DialTimeout.
func (p *Proxy) dialUpstream(addr string) (net.Conn, error) {
	conn, err := p.cfg.Faults.Dial("tcp", addr, p.cfg.DialTimeout)
	if err == nil {
		p.tune(conn)
	}
	return conn, err
}

// tune applies the configured socket options to a freshly accepted or
// dialed conn. Advisory: failures count, the conn serves untuned.
func (p *Proxy) tune(conn net.Conn) {
	if p.cfg.Tuning.Zero() {
		return
	}
	if err := netx.TuneConn(conn, p.cfg.Tuning); err != nil {
		p.reg.Counter("proxy.tune.errors").Inc()
	}
}

// serveLoop runs an accept loop feeding handler goroutines. vip names
// the listener for ledger attribution of accepted connections.
func (p *Proxy) serveLoop(vip string, ln *net.TCPListener, handler func(net.Conn)) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener handle closed (drain or shutdown)
			}
			p.cfg.Ledger.Record(disrupt.KindAccept, p.connSeq.Add(1), vip, "", "")
			p.tune(conn)
			c := p.cfg.AcceptFaults.Conn(conn)
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				handler(c)
			}()
		}
	}()
}

// park stashes a loop watch and the conn it guards so terminate can reap
// it; settles the race where the watch's handler already reaped before
// the stash happened.
func (p *Proxy) park(w *netx.Watch, conn net.Conn) {
	p.parkedMu.Lock()
	p.parked[w] = conn
	p.parkedMu.Unlock()
	p.reg.Gauge("proxy.loop.parked").Inc()
	if w.Stopped() && p.unpark(w) {
		p.reg.Gauge("proxy.loop.parked").Dec()
	}
}

func (p *Proxy) unpark(w *netx.Watch) bool {
	p.parkedMu.Lock()
	_, ok := p.parked[w]
	delete(p.parked, w)
	p.parkedMu.Unlock()
	return ok
}

// reapParked closes a parked connection and retires its watch — the
// loop-mode handler's terminal path.
func (p *Proxy) reapParked(w *netx.Watch, conn net.Conn) {
	conn.Close()
	if p.unpark(w) {
		p.reg.Gauge("proxy.loop.parked").Dec()
	}
	w.Cancel()
}

// Addr returns the bound address of the named VIP ("" if absent).
func (p *Proxy) Addr(vip string) string {
	p.mu.Lock()
	set := p.set
	p.mu.Unlock()
	if set == nil {
		return ""
	}
	if ln := set.TCP(vip); ln != nil {
		return ln.Addr().String()
	}
	if pc := set.UDP(vip); pc != nil {
		return pc.LocalAddr().String()
	}
	return ""
}

// VIPAddrs returns the bound address of every VIP this instance serves.
// Used by the fresh-socket restart path (§5.1 remediation), where the next
// generation must bind brand-new sockets on the same addresses.
func (p *Proxy) VIPAddrs() map[string]string {
	p.mu.Lock()
	set := p.set
	p.mu.Unlock()
	out := map[string]string{}
	if set == nil {
		return out
	}
	for _, v := range set.VIPs() {
		out[v.Name] = v.Addr
	}
	return out
}

// StopTakeoverServer closes the armed takeover server (if any), releasing
// the UNIX socket path for the next generation.
func (p *Proxy) StopTakeoverServer() {
	p.mu.Lock()
	srv := p.takeSrv
	p.takeSrv = nil
	p.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// syncLedgerPhase stamps the ledger with the same release phase
// ReleaseState reports, so disruption attribution tracks the release
// state machine. Call after every phase transition.
func (p *Proxy) syncLedgerPhase() {
	if p.cfg.Ledger == nil {
		return
	}
	p.mu.Lock()
	draining := p.draining
	awaiting := p.awaitingReady
	p.mu.Unlock()
	phase := "serving"
	switch {
	case awaiting:
		phase = "committed-awaiting-ready"
	case draining:
		phase = "draining"
	}
	p.cfg.Ledger.SetPhase(phase, p.cfg.Generation)
}

// newSteerLB builds the Edge's embedded katran LB over the configured
// origins. Each origin is one backend; its health VIP (OriginHealth)
// carries the active health checks and — under prequal — the load
// probes whose answers advertise the origin's RIF, latency and release
// phase. The LB runs without pinning layers: each request gets a fresh
// flow id, so every pick is a policy decision (connection pinning lives
// at the real katran tier in front of the Edge, not here).
func (p *Proxy) newSteerLB(reg *metrics.Registry) *katran.LB {
	pcfg := p.cfg.SteeringPrequal
	if pcfg.Prober == nil && p.cfg.Faults != nil {
		// One probe transport, one fault-injection point: the chaos
		// injector that wraps upstream dials wraps probe dials too.
		pcfg.Prober = &katran.HCProber{Dial: p.cfg.Faults.Dial}
	}
	lb := katran.New(p.cfg.Name+"-steer", katran.Config{
		Policy: katran.NewPolicy(p.cfg.Steering, pcfg, reg),
		Prober: pcfg.Prober,
	}, reg)
	for i, addr := range p.cfg.Origins {
		b := katran.Backend{Name: addr, Addr: addr}
		if i < len(p.cfg.OriginHealth) {
			b.HealthAddr = p.cfg.OriginHealth[i]
		}
		lb.AddBackend(b, true)
	}
	if len(p.cfg.OriginHealth) > 0 {
		lb.StartHealthChecks(p.cfg.SteeringHCInterval)
	}
	return lb
}

// loadSample is this instance's answer to a load probe: requests in
// flight, the data-plane latency median, and the release phase +
// generation — the drain advertisement that lets a Prequal-steering
// peer bleed new flows off this instance the moment a release starts.
// The disruption ledger is the phase source when configured (it tracks
// the serving generation across takeovers); otherwise the proxy's own
// release state machine answers.
func (p *Proxy) loadSample() katran.LoadSample {
	s := katran.LoadSample{
		RIF:        int(p.gRIF.Value()),
		Latency:    time.Duration(p.latHTTP.Quantile(0.5) * float64(time.Second)),
		Generation: p.cfg.Generation,
	}
	if p.cfg.Ledger != nil {
		s.Phase, s.Generation = p.cfg.Ledger.Phase()
		return s
	}
	p.mu.Lock()
	draining := p.draining
	awaiting := p.awaitingReady
	p.mu.Unlock()
	switch {
	case awaiting:
		s.Phase = katran.PhaseCommitted
	case draining:
		s.Phase = katran.PhaseDraining
	default:
		s.Phase = katran.PhaseServing
	}
	return s
}

// serveLoadConn answers load probes on a persistent connection: one
// LOAD line per "LOAD\n" request until the prober hangs up or this
// instance terminates. The connection stays open across a drain — a
// draining instance stops accepting but keeps serving established
// connections, so the probe channel is exactly how the drain
// advertisement reaches steering peers instantly.
func (p *Proxy) serveLoadConn(conn net.Conn, br *bufio.Reader) {
	p.loadConnsMu.Lock()
	p.loadConns[conn] = struct{}{}
	p.loadConnsMu.Unlock()
	defer func() {
		p.loadConnsMu.Lock()
		delete(p.loadConns, conn)
		p.loadConnsMu.Unlock()
	}()
	for {
		p.reg.Counter("proxy.loadprobes").Inc()
		if _, err := fmt.Fprint(conn, katran.EncodeLoadLine(p.loadSample())); err != nil {
			return
		}
		conn.SetDeadline(time.Now().Add(time.Minute))
		line, err := br.ReadString('\n')
		if err != nil || line != "LOAD\n" {
			return
		}
	}
}

// Draining reports whether the proxy is in its drain phase.
func (p *Proxy) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// readyToServe reports whether this instance is genuinely serving — the
// default readiness attestation behind the READY frame (the admin
// /healthz endpoint answers from the same state).
func (p *Proxy) readyToServe() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case p.closed:
		return errors.New("proxy: closed")
	case p.set == nil:
		return errors.New("proxy: no listener set adopted")
	case p.draining:
		return errors.New("proxy: draining")
	}
	return nil
}

// handleHealthConn answers Katran's probes and the monitoring plane:
//
//	"HC\n"    → "OK\n", or "DRAIN\n" while draining (§2.3: draining
//	            instances fail health checks);
//	"LOAD\n"  → a load-probe line (RIF, latency, release phase,
//	            generation) per request, served persistently — the
//	            Prequal probe channel and the drain-advertisement path;
//	"STATS\n" → a counter dump — the paper's per-instance real-time
//	            release signal (§6: "Each restarting instance emits a
//	            signal through which its status can be observed").
func (p *Proxy) handleHealthConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	switch line {
	case "LOAD\n":
		p.serveLoadConn(conn, br)
	case "HC\n":
		p.reg.Counter("proxy.healthchecks").Inc()
		if p.Draining() {
			fmt.Fprint(conn, "DRAIN\n")
			return
		}
		fmt.Fprint(conn, "OK\n")
	case "STATS\n":
		status := "active"
		if p.Draining() {
			status = "draining"
		}
		fmt.Fprintf(conn, "instance %s\nstatus %s\n%s", p.cfg.Name, status, p.reg.Dump())
	}
}

// ServeTakeover runs the Socket Takeover server on path (Fig. 5 step A).
// When a new instance completes the hand-off, this instance automatically
// starts draining. Returns immediately; the hand-off happens in the
// background.
func (p *Proxy) ServeTakeover(path string) error {
	p.mu.Lock()
	set := p.set
	p.mu.Unlock()
	if set == nil {
		return errors.New("proxy: not serving yet")
	}
	srv := &takeover.Server{
		Set:          set,
		Tracer:       p.cfg.Trace,
		ReadyTimeout: p.cfg.TakeoverReadyTimeout,
		OnDrainStart: func(res takeover.Result) {
			// Join the receiver's hand-off trace (ack.Trace) so the old
			// instance's drain appears under the new instance's span tree.
			// Only a committed hand-off reaches this point: on the
			// two-phase protocol draining begins strictly after COMMIT.
			p.reg.Counter("proxy.takeover_commits").Inc()
			if res.Proto >= takeover.ProtoDrainUndo {
				p.mu.Lock()
				p.awaitingReady = true
				p.mu.Unlock()
			}
			p.cfg.Ledger.Record(disrupt.KindHandoff, 0, "", "", "takeover committed; draining")
			p.startDrainingTraced(res.PeerTrace)
		},
		OnReady: func(takeover.Result) {
			// The receiver confirmed serving: the lease is released and
			// the drain is final.
			p.mu.Lock()
			p.awaitingReady = false
			p.mu.Unlock()
			p.reg.Counter("proxy.takeover_readies").Inc()
			// No ledger re-stamp here: the receiver stamped "serving" for
			// the new generation when it sent READY, and this instance's
			// remaining drain tail must not regress a shared ledger to
			// "draining" under the old generation forever.
		},
		OnUndo: func(rearmed *takeover.ListenerSet, cause error) {
			// The lease broke before READY: the receiver is presumed dead
			// and this instance un-drains onto the re-armed listeners.
			p.reg.Counter("proxy.takeover_undos").Inc()
			p.undoDrain(rearmed, cause)
		},
		OnHandoffError: func(err error) {
			// The receiver died or misbehaved; this instance rolled back
			// (pre-commit abort) or un-drained (post-commit undo) and
			// keeps serving.
			if errors.Is(err, takeover.ErrUndone) {
				return // counted via proxy.takeover_undos
			}
			p.reg.Counter("proxy.takeover_aborts").Inc()
		},
	}
	p.mu.Lock()
	quic := p.quic
	p.mu.Unlock()
	if quic != nil {
		// Pre-configure the host-local forward address for user-space UDP
		// routing and advertise it to the next generation (§4.1).
		fwd, err := quic.PrepareDrain()
		if err != nil {
			return err
		}
		srv.Meta = map[string]string{"quic-forward": fwd.String()}
	}
	p.mu.Lock()
	p.takeSrv = srv
	p.mu.Unlock()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(path) }()
	select {
	case err := <-errCh:
		return err
	case <-time.After(50 * time.Millisecond):
		return nil // serving in background
	}
}

// TakeoverFrom connects to the old instance's takeover server, receives
// the listener set, and starts serving on it (Fig. 5 steps B–D and F).
func (p *Proxy) TakeoverFrom(path string) (*takeover.Result, error) {
	return p.TakeoverFromWith(path, TakeoverOptions{})
}

// / Deprecated: TakeoverFromTraced is a legacy wrapper; use TakeoverFromWith
// with TakeoverOptions{Trace}.
func (p *Proxy) TakeoverFromTraced(path string, parent *obs.Span) (*takeover.Result, error) {
	return p.TakeoverFromWith(path, TakeoverOptions{Trace: parent})
}

// TakeoverOptions configures the receiver side of a proxy takeover.
type TakeoverOptions struct {
	// Trace, when non-nil, parents the takeover.handoff span; otherwise a
	// root span is recorded on Config.Trace (nil tracer: untraced).
	Trace *obs.Span
	// OnCommitted, when non-nil, fires the moment the sender's COMMIT is
	// observed on a ProtoDrainUndo hand-off — the instant the release
	// enters its committed-awaiting-ready state. The orchestrator uses it
	// to surface the state in core.ProxySlot.
	OnCommitted func()
	// OnRollingBack, when non-nil, fires when a committed hand-off starts
	// unwinding: the post-commit readiness gate rejected promotion (the
	// proxy's own serving checks or Config.ReadyGate), so this instance
	// is about to step down while the old one un-drains from its
	// retained FDs. The orchestrator uses it to surface the rolling-back
	// state in core.ProxySlot.
	OnRollingBack func()
}

// TakeoverFromWith is TakeoverFrom with explicit options, recorded under a
// takeover.handoff span. The six Fig. 5 steps appear as takeover.step.A–F
// children (A–E from the protocol exchange — with adoption armed inside
// the prepare window — and F marking the transfer of health-check
// responsibility once the hand-off commits).
func (p *Proxy) TakeoverFromWith(path string, opts TakeoverOptions) (*takeover.Result, error) {
	hand := opts.Trace.StartChild(obs.SpanTakeoverHandoff)
	if hand == nil {
		hand = p.cfg.Trace.StartSpan(obs.SpanTakeoverHandoff, obs.SpanContext{})
	}
	hand.SetAttr("instance", p.cfg.Name)
	hand.SetAttr("path", path)
	// Arming happens inside the protocol's prepare window: Adopt starts
	// the accept loops (and the QUIC machinery) BEFORE the PREPARE-ACK is
	// sent, so the confirmation attests to an instance that is already
	// serving — not one that merely holds the sockets. If anything after
	// a successful Adopt aborts the hand-off (commit never arrives, peer
	// crash), Disarm rolls this half-promoted generation back to a clean
	// slate; the shared sockets stay alive in the old instance, which
	// never stopped accepting. On a ProtoDrainUndo hand-off the same
	// Disarm also unwinds a post-commit undo — there the old instance
	// re-arms from its retained dups instead.
	_, res, err := takeover.Connect(path, takeover.ConnectOptions{ReceiveOptions: takeover.ReceiveOptions{
		Trace: hand,
		Arm: func(set *takeover.ListenerSet, res *takeover.Result) error {
			if err := p.Adopt(set); err != nil {
				return err
			}
			if fwd, ok := res.Meta["quic-forward"]; ok {
				p.mu.Lock()
				quic := p.quic
				p.mu.Unlock()
				if quic != nil {
					if addr, err := net.ResolveUDPAddr("udp", fwd); err == nil {
						quic.SetForward(addr)
					}
				}
			}
			return nil
		},
		Disarm: func(*takeover.ListenerSet) {
			p.reg.Counter("proxy.takeover_disarms").Inc()
			p.stepDown()
		},
		Ready: func(*takeover.ListenerSet, *takeover.Result) error {
			// The readiness gate behind the READY frame (ProtoDrainUndo):
			// attest /healthz-green serving, not just adopted sockets. A
			// failure here un-drains the old instance.
			if opts.OnCommitted != nil {
				opts.OnCommitted()
			}
			err := p.readyToServe()
			if err == nil && p.cfg.ReadyGate != nil {
				err = p.cfg.ReadyGate()
			}
			if err != nil && opts.OnRollingBack != nil {
				opts.OnRollingBack()
			}
			return err
		},
	}})
	if err != nil {
		if errors.Is(err, takeover.ErrUndone) {
			p.reg.Counter("proxy.takeover_undone").Inc()
		}
		hand.Fail(err)
		hand.End()
		return nil, err
	}
	// Step F: the hand-off is committed — the old instance is draining and
	// health-check responsibility is now this instance's.
	spF := hand.StartChild("takeover.step.F")
	spF.SetAttr("vips", fmt.Sprintf("%d", len(res.VIPs)))
	spF.SetAttr("proto", fmt.Sprintf("%d", res.Proto))
	spF.End()
	p.reg.Counter("proxy.takeovers").Inc()
	p.cfg.Ledger.Record(disrupt.KindHandoff, 0, "", "", "takeover received; serving")
	p.syncLedgerPhase() // post-READY the release is decided: serving, new generation
	hand.End()
	return res, nil
}

// StartDraining enters the drain phase (Fig. 5 step E):
//
//   - health checks answer DRAIN;
//   - the accept loops stop (this instance's listener handles close; the
//     shared sockets stay alive in the new instance);
//   - Origin: GOAWAY on every tunnel session and reconnect_solicitation
//     on every relayed MQTT stream (§4.2 step A);
//   - existing connections continue to be served until Shutdown.
func (p *Proxy) StartDraining() { p.startDrainingTraced("") }

// startDrainingTraced is StartDraining joined to the peer's trace (the
// new instance's hand-off span, in wire form) when one is known. The
// proxy.drain span stays open until terminate, covering the whole drain
// window.
func (p *Proxy) startDrainingTraced(peerTrace string) {
	p.mu.Lock()
	if p.draining || p.closed {
		p.mu.Unlock()
		return
	}
	p.draining = true
	set := p.set
	sessions := make([]*originSession, 0, len(p.srvSessions))
	for s := range p.srvSessions {
		sessions = append(sessions, s)
	}
	remote, _ := obs.ParseSpanContext(peerTrace)
	sp := p.cfg.Trace.StartSpan("proxy.drain", remote)
	sp.SetAttr("instance", p.cfg.Name)
	p.drainSpan = sp
	p.mu.Unlock()
	close(p.drainCh)
	p.reg.Counter("proxy.drains").Inc()
	p.syncLedgerPhase()
	p.cfg.Ledger.Record(disrupt.KindDrain, 0, "", "", "drain started")

	// Closing our TCP handles stops the accept loops without closing the
	// shared sockets (the new instance's FDs keep them alive). When no
	// takeover happened this also unbinds the VIPs — the HardRestart
	// case. The UDP handle stays open: the draining QUIC stack keeps
	// writing replies through it while its flows are forwarded back.
	if set != nil {
		set.CloseTCP()
	}
	p.mu.Lock()
	quic := p.quic
	p.mu.Unlock()
	if quic != nil {
		quic.StartDraining()
	}
	// Relayed MQTT streams get the drain span's context in the
	// solicitation payload, so the Edge's dcr.reconnect spans join this
	// trace (§4.2 step A).
	for _, s := range sessions {
		s.startDrain(sp.Context().String())
	}
}

// undoDrain reverses startDrainingTraced after a broken drain-undo lease:
// the hand-off committed but the receiver never confirmed serving, so this
// instance resumes full ownership. rearmed holds listeners rebuilt from
// the takeover layer's retained dups — the same kernel sockets this
// instance was serving before the drain, with every SYN that arrived
// during the recovery window still queued in their backlogs.
//
// The TCP listeners are folded back into the serving set (the drain's
// CloseTCP removed those entries) and their accept loops restarted; the
// UDP dups are redundant — the draining instance never closed its UDP
// handles — so they are dropped and the QUIC stack just resumes reading.
// Origin sessions that already received a reconnect solicitation are left
// alone: DCR re-homes those streams through another Origin regardless
// (§4.2), while unsolicited future connections land here again.
func (p *Proxy) undoDrain(rearmed *takeover.ListenerSet, cause error) {
	p.mu.Lock()
	if p.closed || !p.draining {
		p.mu.Unlock()
		rearmed.Close()
		return
	}
	p.draining = false
	p.awaitingReady = false
	p.drainCh = make(chan struct{})
	drainSpan := p.drainSpan
	p.drainSpan = nil
	set := p.set
	quic := p.quic
	p.mu.Unlock()

	for _, v := range rearmed.VIPs() {
		if v.Network == takeover.NetworkUDP {
			if pc := rearmed.UDP(v.Name); pc != nil {
				pc.Close()
			}
			continue
		}
		ln := rearmed.TCP(v.Name)
		if ln == nil {
			continue
		}
		handler := p.tcpHandler(v.Name)
		if handler == nil || set == nil || set.TCP(v.Name) != nil {
			ln.Close()
			continue
		}
		if err := set.AddTCP(v.Name, ln); err != nil {
			ln.Close()
			continue
		}
		p.serveLoop(v.Name, ln, handler)
	}
	if quic != nil {
		quic.UndoDrain()
	}
	p.reg.Counter("proxy.drain_undos").Inc()
	p.syncLedgerPhase()
	p.cfg.Ledger.Record(disrupt.KindUndo, 0, "", "", fmt.Sprintf("drain undone: %v", cause))
	if drainSpan != nil {
		drainSpan.Fail(fmt.Errorf("proxy: drain undone: %w", cause))
		drainSpan.End()
	}
}

// Shutdown drains (if not already draining) and, after the drain period,
// terminates all remaining work.
func (p *Proxy) Shutdown() {
	p.StartDraining()
	time.Sleep(p.cfg.DrainPeriod)
	p.terminate()
}

// Close terminates immediately (tests).
func (p *Proxy) Close() { p.terminate() }

// stepDown retires a generation that lost its hand-off — a pre-commit
// abort or a post-commit undo. The peer generation owns the shared
// kernel sockets and never stopped (or has resumed) accepting, so the
// only connections at risk are the ones this instance already pulled off
// the accept queue: stop accepting first, give their handlers a bounded
// window to finish, then terminate. A hard Close here would turn a
// survivable rollback into client-visible disruption.
func (p *Proxy) stepDown() {
	p.mu.Lock()
	closed := p.closed
	set := p.set
	p.mu.Unlock()
	if closed {
		return
	}
	if set != nil {
		set.CloseTCP() // handles only; the peer's FDs keep the sockets alive
	}
	finished := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
	}
	p.terminate()
}

func (p *Proxy) terminate() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	if !p.draining {
		p.draining = true
		close(p.drainCh)
	}
	drainSpan := p.drainSpan
	p.drainSpan = nil
	set := p.set
	takeSrv := p.takeSrv
	tunnels := make([]*tunnelEntry, 0, len(p.tunnels))
	for _, te := range p.tunnels {
		tunnels = append(tunnels, te)
	}
	relays := make([]*mqttRelay, 0, len(p.mqttConns))
	for r := range p.mqttConns {
		relays = append(relays, r)
	}
	sessions := make([]*originSession, 0, len(p.srvSessions))
	for s := range p.srvSessions {
		sessions = append(sessions, s)
	}
	p.mu.Unlock()

	// Parked loop-mode connections have no goroutine to notice the
	// shutdown; close them and retire their watches here. Draining does
	// NOT touch them — existing connections are served until terminate,
	// exactly like their goroutine-backed peers.
	p.parkedMu.Lock()
	parked := p.parked
	p.parked = make(map[*netx.Watch]net.Conn)
	p.parkedMu.Unlock()
	for w, c := range parked {
		c.Close()
		w.Cancel()
		p.reg.Gauge("proxy.loop.parked").Dec()
	}

	if takeSrv != nil {
		takeSrv.Close()
	}
	p.mu.Lock()
	quic := p.quic
	p.mu.Unlock()
	if quic != nil {
		quic.Close()
	}
	if set != nil {
		set.Close()
	}
	for _, te := range tunnels {
		te.sess.Close()
	}
	for _, r := range relays {
		r.close()
	}
	for _, s := range sessions {
		s.close()
	}
	// Persistent LOAD probe channels have a goroutine blocked in read;
	// close them or wg.Wait below never returns. The embedded steering
	// LB goes with them (its probe pools hold channels to the origins).
	p.loadConnsMu.Lock()
	loadConns := make([]net.Conn, 0, len(p.loadConns))
	for c := range p.loadConns {
		loadConns = append(loadConns, c)
	}
	p.loadConnsMu.Unlock()
	for _, c := range loadConns {
		c.Close()
	}
	if p.steerLB != nil {
		p.steerLB.Close()
	}
	p.wg.Wait()
	drainSpan.End()
}

// Tracer returns the configured tracer (nil when tracing is off).
func (p *Proxy) Tracer() *obs.Tracer { return p.cfg.Trace }

// ReleaseState reports the instance's release state machine for the
// admin /debug/release endpoint.
func (p *Proxy) ReleaseState() obs.ReleaseState {
	p.mu.Lock()
	draining := p.draining
	awaiting := p.awaitingReady
	armed := p.takeSrv != nil
	p.mu.Unlock()
	phase := "serving"
	switch {
	case awaiting:
		phase = "committed-awaiting-ready"
	case draining:
		phase = "draining"
	}
	return obs.ReleaseState{
		Service:  p.cfg.Name,
		Draining: draining,
		Slots: []obs.SlotState{{
			Name:           p.cfg.Name,
			Phase:          phase,
			Draining:       draining,
			TakeoverArmed:  armed,
			Takeovers:      p.reg.CounterValue("proxy.takeovers"),
			TakeoverAborts: p.reg.CounterValue("proxy.takeover_aborts"),
			TakeoverUndos:  p.reg.CounterValue("proxy.takeover_undos"),
			Drains:         p.reg.CounterValue("proxy.drains"),
		}},
		InFlightSpans: p.cfg.Trace.InFlight(),
	}
}
