package proxy

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"zdr/internal/bufpool"
	"zdr/internal/disrupt"
	"zdr/internal/h2t"
	"zdr/internal/http1"
	"zdr/internal/mqtt"
	"zdr/internal/netx"
	"zdr/internal/obs"
)

// originSession tracks one Edge-facing tunnel session on the Origin, with
// the MQTT relays it carries (needed for reconnect_solicitation at drain).
type originSession struct {
	p    *Proxy
	sess *h2t.Session

	mu     sync.Mutex
	relays map[*h2t.Stream]*brokerRelay
}

type brokerRelay struct {
	stream *h2t.Stream
	conn   net.Conn
	userID string
}

func (os *originSession) addRelay(r *brokerRelay) {
	os.mu.Lock()
	os.relays[r.stream] = r
	os.mu.Unlock()
}

func (os *originSession) removeRelay(st *h2t.Stream) {
	os.mu.Lock()
	delete(os.relays, st)
	os.mu.Unlock()
}

// startDrain performs the Origin side of a graceful restart: GOAWAY on
// the tunnel (no new streams) and reconnect_solicitation on every MQTT
// relay stream (§4.2 step A). HTTP streams in flight run to completion.
// trace, when non-empty, is the drain span's wire context; it rides the
// solicitation payload so the Edge's dcr.reconnect spans join the trace.
func (os *originSession) startDrain(trace string) {
	os.sess.GoAway()
	os.mu.Lock()
	relays := make([]*brokerRelay, 0, len(os.relays))
	for _, r := range os.relays {
		relays = append(relays, r)
	}
	os.mu.Unlock()
	for _, r := range relays {
		payload := r.userID
		if trace != "" {
			payload += "\n" + trace
		}
		r.stream.SendControl(h2t.FrameReconnectSolicitation, []byte(payload))
		os.p.reg.Counter("origin.mqtt.solicitations_sent").Inc()
	}
}

func (os *originSession) close() {
	os.mu.Lock()
	relays := make([]*brokerRelay, 0, len(os.relays))
	for _, r := range os.relays {
		relays = append(relays, r)
	}
	os.relays = map[*h2t.Stream]*brokerRelay{}
	os.mu.Unlock()
	for _, r := range relays {
		r.conn.Close()
	}
	os.sess.Close()
}

// handleTunnelConn serves one Edge-facing tunnel connection.
func (p *Proxy) handleTunnelConn(conn net.Conn) {
	os := &originSession{
		p:      p,
		sess:   h2t.NewSession(conn, false),
		relays: make(map[*h2t.Stream]*brokerRelay),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		os.sess.Close()
		return
	}
	p.srvSessions[os] = struct{}{}
	draining := p.draining
	p.mu.Unlock()
	p.reg.Counter("origin.tunnel.sessions").Inc()
	if draining {
		// A session accepted in the race window of a drain is immediately
		// told to go elsewhere.
		os.sess.GoAway()
	}
	defer func() {
		p.mu.Lock()
		delete(p.srvSessions, os)
		p.mu.Unlock()
		os.close()
	}()
	for {
		st, err := os.sess.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handleTunnelStream(os, st)
		}()
	}
}

func (p *Proxy) handleTunnelStream(os *originSession, st *h2t.Stream) {
	hdr := st.Headers()
	switch hdr["proto"] {
	case "mqtt":
		p.relayMQTT(os, st, hdr["user-id"], hdr[obs.TraceHeader], false)
	case "mqtt-resume":
		p.relayMQTT(os, st, hdr["user-id"], hdr[obs.TraceHeader], true)
	default:
		p.forwardHTTP(st, hdr)
	}
}

// pickBroker resolves a user-id to its broker by consistent hashing — the
// property that lets ANY healthy Origin find the same broker (§4.2).
func (p *Proxy) pickBroker(userID string) (string, error) {
	addr := p.brokerRing.Pick(userID)
	if addr == "" {
		return "", errors.New("proxy: no brokers configured")
	}
	return addr, nil
}

// relayMQTT connects a tunnel stream to the user's broker and relays
// bytes. resume=true is a DCR re_connect: this Origin itself performs the
// CONNECT(CleanSession=false) handshake with the broker and reports the
// verdict to the Edge as connect_ack / connect_refuse before splicing into
// plain byte relaying.
func (p *Proxy) relayMQTT(os *originSession, st *h2t.Stream, userID, trace string, resume bool) {
	// The span covers connection establishment (broker dial and, on a DCR
	// re_connect, the CONNECT/CONNACK verdict), not the relay lifetime.
	remote, _ := obs.ParseSpanContext(trace)
	spanName := "origin.mqtt.connect"
	if resume {
		spanName = "origin.mqtt.resume"
	}
	sp := p.cfg.Trace.StartSpan(spanName, remote)
	sp.SetAttr("user-id", userID)
	fail := func(err error) {
		sp.Fail(err)
		sp.End()
	}
	if userID == "" {
		fail(errors.New("proxy: missing user-id"))
		st.Reset()
		return
	}
	brokerAddr, err := p.pickBroker(userID)
	if err != nil {
		fail(err)
		st.Reset()
		return
	}
	sp.SetAttr("broker", brokerAddr)
	bconn, err := p.dialUpstream(brokerAddr)
	if err != nil {
		p.reg.Counter("origin.mqtt.broker_dial_failed").Inc()
		if resume {
			// The Edge falls back to its old stream; not yet terminal.
			p.cfg.Ledger.Record(disrupt.KindRetry, 0, VIPTunnel, "", "resume: broker dial failed")
			st.SendControl(h2t.FrameConnectRefuse, nil)
		} else {
			p.cfg.Ledger.Record(disrupt.KindReset, 0, VIPTunnel, "origin:broker-dial-failed", userID)
		}
		fail(err)
		st.Reset()
		return
	}

	if resume {
		// §4.2 steps B2/C1-C2: re_connect to the broker holding the
		// user's context; it accepts only if context exists.
		if err := mqtt.Encode(bconn, &mqtt.Packet{Type: mqtt.CONNECT, ClientID: userID, CleanSession: false}); err != nil {
			st.SendControl(h2t.FrameConnectRefuse, nil)
			bconn.Close()
			fail(err)
			st.Reset()
			return
		}
		bconn.SetReadDeadline(time.Now().Add(5 * time.Second))
		ack, err := mqtt.Decode(bconn)
		bconn.SetReadDeadline(time.Time{})
		if err != nil || ack.Type != mqtt.CONNACK || ack.ReturnCode != mqtt.ConnAccepted || !ack.SessionPresent {
			p.reg.Counter("origin.mqtt.resume_refused").Inc()
			p.cfg.Ledger.Record(disrupt.KindRetry, 0, VIPTunnel, "", "resume refused by broker")
			st.SendControl(h2t.FrameConnectRefuse, nil)
			bconn.Close()
			fail(errors.New("proxy: broker refused resume"))
			st.Reset()
			return
		}
		p.reg.Counter("origin.mqtt.resume_ack").Inc()
		p.cfg.Ledger.Record(disrupt.KindReattach, 0, VIPTunnel, "", userID)
		if err := st.SendControl(h2t.FrameConnectAck, nil); err != nil {
			bconn.Close()
			fail(err)
			st.Reset()
			return
		}
	}
	sp.End()

	relay := &brokerRelay{stream: st, conn: bconn, userID: userID}
	os.addRelay(relay)
	p.reg.Counter("origin.mqtt.relays").Inc()
	p.reg.Gauge("origin.mqtt.active").Inc()
	defer func() {
		os.removeRelay(st)
		p.reg.Gauge("origin.mqtt.active").Dec()
	}()

	// Bidirectional byte relay; returns when either side closes. The
	// relay selector (netx.Relay) takes the kernel splice path only when
	// both ends are bare TCP conns; the stream side here is h2t-framed,
	// so these pumps keep the pooled copy — with both ends wrapped plain
	// inside Relay, since a bare *net.TCPConn dst would divert
	// io.CopyBuffer into ReadFrom and allocate its own scratch. A fault-
	// wrapped bconn also fails the selector, keeping injected faults on
	// the observable path.
	errCh := make(chan error, 2)
	go func() {
		_, err := netx.Relay(bconn, st)
		errCh <- err
	}()
	go func() {
		_, err := netx.Relay(st, bconn)
		errCh <- err
	}()
	<-errCh
	bconn.Close()
	st.Reset()
	<-errCh
}

// forwardHTTP forwards one tunneled HTTP request to an app server,
// implementing the client (downstream-proxy) side of Partial Post Replay.
func (p *Proxy) forwardHTTP(st *h2t.Stream, hdr map[string]string) {
	method := hdr[":method"]
	path := hdr[":path"]
	if method == "" || path == "" {
		st.Reset()
		return
	}
	cl := int64(-1)
	if v, ok := hdr["content-length"]; ok {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			cl = n
		}
	}
	p.reg.Counter("origin.http.requests").Inc()
	t0 := time.Now()
	p.gRIF.Inc()
	defer p.gRIF.Dec()
	defer func() { p.latHTTP.Observe(time.Since(t0).Seconds()) }()

	remote, _ := obs.ParseSpanContext(hdr[obs.TraceHeader])
	sp := p.cfg.Trace.StartSpan("origin.http", remote)
	sp.SetAttr("method", method)
	sp.SetAttr("path", path)
	defer sp.End()
	downstreamTrace := hdr[obs.TraceHeader]
	if c := sp.Context().String(); c != "" {
		downstreamTrace = c
	}

	var replay []byte // partial body handed back by a restarting server
	var body io.Reader = st
	if method != "POST" && method != "PUT" {
		body = nil
	}

	attempts := p.cfg.PPRRetries
	var lastErr error
	errored := 0 // transport-failed attempts, paced by RetryBackoff
	for attempt := 0; attempt <= attempts; attempt++ {
		asAddr := p.nextAppServer(attempt)
		if asAddr == "" {
			lastErr = errors.New("proxy: no app servers configured")
			break
		}
		var attSp *obs.Span
		if replay != nil {
			// This attempt replays a 379 hand-back (§4.3).
			attSp = sp.StartChild("ppr.replay")
			attSp.SetAttr("attempt", strconv.Itoa(attempt))
			attSp.SetAttr("app-server", asAddr)
		}
		resp, _, conn, err := p.attemptAppServer(asAddr, method, path, cl, replay, body, downstreamTrace)
		if err != nil {
			lastErr = err
			attSp.Fail(err)
			attSp.End()
			p.reg.Counter("origin.http.attempt_errors").Inc()
			p.cfg.Ledger.Record(disrupt.KindRetry, 0, VIPTunnel, "", "app-server attempt failed: "+err.Error())
			// Back off before redialing: a restarting app server needs a
			// moment to rebind (§4.4). PPR replays (the 379 path below)
			// are not delayed — the hand-back is an invitation to resend
			// immediately to a healthy server.
			time.Sleep(p.cfg.RetryBackoff.Delay(errored))
			errored++
			continue
		}
		if http1.IsPartialPostReplay(resp) {
			// §4.3: collect the partial body; 379 must never reach the
			// user. Replay to another server with the returned prefix
			// plus whatever the client is still sending.
			partial, err := http1.ReadFullBodySized(resp.Body, resp.ContentLength)
			conn.Close()
			attSp.SetAttr("result", "379")
			attSp.End()
			if err != nil {
				lastErr = err
				continue
			}
			replay = partial
			p.reg.Counter("origin.http.ppr_replays").Inc()
			p.cfg.Ledger.Record(disrupt.KindRetry, 0, VIPTunnel, "", "379 hand-back; replaying")
			continue
		}
		// Success (or a terminal app error): relay to the Edge.
		attSp.End()
		sp.SetAttr("status", strconv.Itoa(resp.StatusCode))
		p.relayResponse(st, resp)
		conn.Close()
		return
	}
	// All attempts failed: the paper's fallback — a standard 500.
	p.reg.Counter("origin.http.ppr_exhausted").Inc()
	detail := ""
	if lastErr != nil {
		detail = lastErr.Error()
	}
	p.cfg.Ledger.Record(disrupt.KindReset, 0, VIPTunnel, "origin:ppr-exhausted", detail)
	sp.Fail(lastErr)
	st.SendHeaders(map[string]string{"status": "500"}, true)
}

// nextAppServer round-robins with an attempt offset so PPR retries hit a
// different server (§4.4: a draining server's replacement pick).
func (p *Proxy) nextAppServer(attempt int) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.cfg.AppServers) == 0 {
		return ""
	}
	if attempt == 0 {
		p.rrApp++
	}
	return p.cfg.AppServers[(p.rrApp+attempt)%len(p.cfg.AppServers)]
}

// attemptAppServer sends one request attempt. The body is streamed in
// small chunks while the response is watched concurrently, so a 379 that
// arrives mid-upload stops forwarding promptly (the restarting server
// grace-reads everything sent before that moment, preserving the
// no-byte-lost invariant). On return the caller owns conn.
func (p *Proxy) attemptAppServer(addr, method, path string, cl int64, replay []byte, rest io.Reader, trace string) (*http1.Response, *bufio.Reader, net.Conn, error) {
	conn, err := p.dialUpstream(addr)
	if err != nil {
		return nil, nil, nil, err
	}

	// Response watcher.
	type respResult struct {
		resp *http1.Response
		br   *bufio.Reader
		err  error
	}
	respCh := make(chan respResult, 1)
	go func() {
		br := bufio.NewReader(conn)
		resp, err := http1.ReadResponse(br)
		respCh <- respResult{resp, br, err}
	}()

	fail := func(err error) (*http1.Response, *bufio.Reader, net.Conn, error) {
		conn.Close()
		return nil, nil, nil, err
	}

	// Head.
	var head bytes.Buffer
	fmt.Fprintf(&head, "%s %s HTTP/1.1\r\n", method, path)
	if trace != "" {
		fmt.Fprintf(&head, "X-Zdr-Trace: %s\r\n", trace)
	}
	hasBody := rest != nil || len(replay) > 0
	chunked := false
	switch {
	case !hasBody:
		head.WriteString("Content-Length: 0\r\n")
	case cl >= 0:
		fmt.Fprintf(&head, "Content-Length: %d\r\n", cl)
	default:
		head.WriteString("Transfer-Encoding: chunked\r\n")
		chunked = true
	}
	head.WriteString("\r\n")
	if _, err := conn.Write(head.Bytes()); err != nil {
		return fail(err)
	}

	// Body: replay prefix first, then the live stream, chunk by chunk,
	// polling for an early response before each write.
	var cw *http1.ChunkedWriter
	if chunked {
		cw = http1.NewChunkedWriter(conn)
	}
	writeChunk := func(b []byte) error {
		if len(b) == 0 {
			return nil
		}
		if chunked {
			_, err := cw.Write(b)
			return err
		}
		_, err := conn.Write(b)
		return err
	}

	if hasBody {
		earlyResp := func() *respResult {
			select {
			case rr := <-respCh:
				return &rr
			default:
				return nil
			}
		}
		if rr := earlyResp(); rr != nil {
			if rr.err != nil {
				return fail(rr.err)
			}
			return rr.resp, rr.br, conn, nil
		}
		if err := writeChunk(replay); err != nil {
			return fail(fmt.Errorf("proxy: writing replay prefix: %w", err))
		}
		if rest != nil {
			bp := bufpool.Get(8 << 10)
			defer bufpool.Put(bp)
			buf := *bp
			for {
				if rr := earlyResp(); rr != nil {
					// Early response (379 or error) — stop forwarding.
					if rr.err != nil {
						return fail(rr.err)
					}
					return rr.resp, rr.br, conn, nil
				}
				n, rerr := rest.Read(buf)
				if n > 0 {
					if rr := earlyResp(); rr != nil {
						// Response arrived while we were blocked reading
						// the client: do NOT forward this chunk — the
						// 379 body already reflects everything the
						// server received. The chunk stays with the
						// caller via the replay mechanism? No: it was
						// consumed from the stream. Hand it back by
						// prepending to the response body consumer.
						if rr.err != nil {
							return fail(rr.err)
						}
						return p.prependConsumed(rr.resp, buf[:n]), rr.br, conn, nil
					}
					if werr := writeChunk(buf[:n]); werr != nil {
						return fail(fmt.Errorf("proxy: forwarding body: %w", werr))
					}
				}
				if rerr == io.EOF {
					break
				}
				if rerr != nil {
					return fail(fmt.Errorf("proxy: reading client body: %w", rerr))
				}
			}
			if chunked {
				if err := cw.Close(); err != nil {
					return fail(err)
				}
			}
		} else if chunked {
			if err := cw.Close(); err != nil {
				return fail(err)
			}
		}
	}

	// Await the response.
	respTimer := time.NewTimer(p.cfg.UpstreamResponseTimeout)
	defer respTimer.Stop()
	select {
	case rr := <-respCh:
		if rr.err != nil {
			return fail(rr.err)
		}
		return rr.resp, rr.br, conn, nil
	case <-respTimer.C:
		return fail(errors.New("proxy: app server response timeout"))
	}
}

// prependConsumed attaches body bytes that were consumed from the client
// stream but never forwarded (the write was cancelled by an early 379) to
// the 379's partial body, preserving the replay invariant:
// replayed = serverReceived ++ consumedUnforwarded ++ stillStreaming.
func (p *Proxy) prependConsumed(resp *http1.Response, consumed []byte) *http1.Response {
	if !http1.IsPartialPostReplay(resp) || len(consumed) == 0 {
		return resp
	}
	tail := make([]byte, len(consumed))
	copy(tail, consumed)
	if resp.Body == nil {
		resp.Body = bytes.NewReader(tail)
	} else {
		resp.Body = io.MultiReader(resp.Body, bytes.NewReader(tail))
	}
	if resp.ContentLength >= 0 {
		resp.ContentLength += int64(len(tail))
	}
	return resp
}

// relayResponse sends an app-server response back over the tunnel stream.
func (p *Proxy) relayResponse(st *h2t.Stream, resp *http1.Response) {
	hdr := map[string]string{
		"status":         strconv.Itoa(resp.StatusCode),
		"status-message": resp.StatusMessage,
	}
	for k, vs := range resp.Header {
		if len(vs) > 0 {
			hdr[k] = vs[0]
		}
	}
	p.reg.Counter(fmt.Sprintf("origin.http.status.%d", resp.StatusCode)).Inc()
	if err := st.SendHeaders(hdr, false); err != nil {
		return
	}
	if resp.Body != nil {
		if _, err := netx.Relay(st, resp.Body); err != nil {
			st.Reset()
			return
		}
	}
	st.CloseWrite()
}
