package proxy

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"zdr/internal/appserver"
	"zdr/internal/disrupt"
	"zdr/internal/faults"
	"zdr/internal/http1"
)

// startLedgeredPair starts one Origin and one Edge, each with its own
// disruption ledger, over a single app server.
func startLedgeredPair(t *testing.T, edgeCfg Config) (*Proxy, *Proxy, *disrupt.Ledger, *disrupt.Ledger) {
	t.Helper()
	as := appserver.New(appserver.Config{Name: "as-0", Mode: appserver.ModePPR}, nil)
	appAddr, err := as.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(as.Close)

	oLed := disrupt.New("origin-0", 256)
	o := New(Config{
		Name:       "origin-0",
		Role:       RoleOrigin,
		AppServers: []string{appAddr},
		Ledger:     oLed,
		Generation: 1,
	}, nil)
	if err := o.Listen(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)

	eLed := disrupt.New("edge-0", 256)
	edgeCfg.Name = "edge-0"
	edgeCfg.Role = RoleEdge
	edgeCfg.Origins = []string{o.Addr(VIPTunnel)}
	edgeCfg.Ledger = eLed
	edgeCfg.Generation = 1
	e := New(edgeCfg, nil)
	if err := e.Listen(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, o, eLed, oLed
}

// TestLedgerRecordsServingPath checks the happy path: accepted
// connections land in both ledgers and the hot-path latency histograms
// record each request.
func TestLedgerRecordsServingPath(t *testing.T) {
	e, o, eLed, oLed := startLedgeredPair(t, Config{})
	for i := 0; i < 3; i++ {
		resp := doRequest(t, e.Addr(VIPWeb), http1.NewRequest("GET", "/api/feed", nil, 0))
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	er := eLed.Report()
	if er.ByKind["accept"] < 1 {
		t.Fatalf("edge ledger missing accepts: %v", er.ByKind)
	}
	if er.Terminal != 0 || er.Unattributed != 0 {
		t.Fatalf("clean run recorded failures: %+v", er)
	}
	if phase, gen := eLed.Phase(); phase != "serving" || gen != 1 {
		t.Fatalf("phase = %s/%d", phase, gen)
	}
	if or := oLed.Report(); or.ByKind["accept"] < 1 {
		t.Fatalf("origin ledger missing accepts: %v", or.ByKind)
	}

	for reg, name := range map[*Proxy]string{e: "edge.http.latency", o: "origin.http.latency"} {
		s, ok := reg.Metrics().Snapshot().AtomicHistograms[name]
		if !ok || s.Count != 3 {
			t.Fatalf("%s count = %d (ok=%v), want 3", name, s.Count, ok)
		}
	}
	if s, ok := e.Metrics().Snapshot().AtomicHistograms["edge.tunnel.latency"]; !ok || s.Count != 3 {
		t.Fatalf("edge.tunnel.latency missing: %+v (ok=%v)", s, ok)
	}
}

// TestLedgerAttributesTerminalFailures drives a request into an Edge
// with no reachable Origin and checks the 503 is attributed.
func TestLedgerAttributesTerminalFailures(t *testing.T) {
	led := disrupt.New("edge-dead", 64)
	e := New(Config{
		Name:        "edge-dead",
		Role:        RoleEdge,
		Origins:     []string{"127.0.0.1:1"}, // nothing listens here
		Ledger:      led,
		Generation:  2,
		DialTimeout: 200 * time.Millisecond,
	}, nil)
	if err := e.Listen(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	resp := doRequest(t, e.Addr(VIPWeb), http1.NewRequest("GET", "/api/feed", nil, 0))
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	r := led.Report()
	if r.Terminal != 1 || r.Unattributed != 0 {
		t.Fatalf("terminal=%d unattributed=%d: %+v", r.Terminal, r.Unattributed, r)
	}
	if len(r.Cells) != 1 || r.Cells[0].Cause != "edge:no-origin" ||
		r.Cells[0].Phase != "serving" || r.Cells[0].Generation != 2 {
		t.Fatalf("attribution cells: %+v", r.Cells)
	}
}

// TestLedgerDrainPhaseStamping pins the phase transitions the ledger
// sees across a drain.
func TestLedgerDrainPhaseStamping(t *testing.T) {
	led := disrupt.New("origin-drain", 64)
	o := New(Config{
		Name:       "origin-drain",
		Role:       RoleOrigin,
		Ledger:     led,
		Generation: 3,
	}, nil)
	if err := o.Listen(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)
	if phase, gen := led.Phase(); phase != "serving" || gen != 3 {
		t.Fatalf("initial phase = %s/%d", phase, gen)
	}
	o.StartDraining()
	if phase, _ := led.Phase(); phase != "draining" {
		t.Fatalf("post-drain phase = %s", phase)
	}
	if r := led.Report(); r.ByKind["drain"] != 1 {
		t.Fatalf("drain events: %v", r.ByKind)
	}
}

// TestLedgerChaosAttribution is the chaos-suite reconciliation: every
// fault the injector fires must appear in the ledger as one Fault event
// whose cause names the injected op — injected and observed disruption
// reconcile exactly, with nothing unattributed.
func TestLedgerChaosAttribution(t *testing.T) {
	inj := faults.NewInjector(faults.Scenario{
		Seed:        7,
		AbortRate:   0.3,
		AbortMinOps: 1,
	})
	e, _, eLed, _ := startLedgeredPair(t, Config{AcceptFaults: inj})

	for i := 0; i < 40; i++ {
		conn, err := net.DialTimeout("tcp", e.Addr(VIPWeb), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "GET /api/feed HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
		buf := make([]byte, 4096)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		conn.Read(buf) // success or injected abort — both fine
		conn.Close()
	}
	// Join in-flight handlers so late faults are recorded before we
	// reconcile.
	e.Close()

	injected := int64(inj.InjectedTotal())
	if injected == 0 {
		t.Fatal("scenario injected nothing; test is vacuous")
	}
	r := eLed.Report()
	if r.ByKind["fault"] != injected {
		t.Fatalf("ledger fault events = %d, injector fired %d", r.ByKind["fault"], injected)
	}
	if r.Unattributed != 0 {
		t.Fatalf("unattributed terminal events: %d", r.Unattributed)
	}
	var faultCells int64
	for _, c := range r.Cells {
		if strings.HasPrefix(c.Cause, "injected:") {
			faultCells += c.Count
		}
	}
	if faultCells != injected {
		t.Fatalf("fault cells account for %d of %d injected faults: %+v", faultCells, injected, r.Cells)
	}
}
