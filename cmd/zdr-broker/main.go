// Command zdr-broker runs the MQTT pub/sub back-end. Sessions are keyed by
// user-id and retain connection context across relay hand-overs, which is
// the server side of Downstream Connection Reuse.
//
// Usage:
//
//	zdr-broker -addr 127.0.0.1:9100
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"zdr/internal/mqtt"
	"zdr/internal/netx"
	"zdr/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	name := flag.String("name", "", "broker name (default broker-<pid>)")
	admin := flag.String("admin", "", "admin endpoint bind address (/metrics, /healthz); empty disables")
	profile := flag.Bool("profile", false, "expose /debug/pprof/ and sample Go runtime gauges on the admin endpoint")
	eventLoop := flag.Bool("event-loop", false, "park idle sessions in an epoll event loop instead of goroutines")
	loopWorkers := flag.Int("event-loop-workers", 0, "event loop worker pool size (0 = GOMAXPROCS)")
	tuningFlags := netx.TuningFlags(flag.CommandLine)
	flag.Parse()
	if *name == "" {
		*name = fmt.Sprintf("broker-%d", os.Getpid())
	}

	b := mqtt.NewBroker(*name, nil)
	b.SetTuning(tuningFlags())
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *eventLoop {
		loop, err := netx.NewEventLoop(netx.EventLoopConfig{Workers: *loopWorkers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer loop.Close()
		fmt.Printf("%s: serving MQTT on %s (event loop)\n", *name, ln.Addr())
		go b.ServeLoop(ln, loop)
	} else {
		fmt.Printf("%s: serving MQTT on %s\n", *name, ln.Addr())
		go b.Serve(ln)
	}
	if *admin != "" {
		a := &obs.Admin{Service: *name, Registry: b.Metrics(), Profile: *profile}
		if *profile {
			stopStats := obs.StartRuntimeStats(b.Metrics(), 0)
			defer stopStats()
		}
		srv, err := a.Start(*admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("%s: admin on http://%s\n", *name, srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	ln.Close()
	b.Close()
	fmt.Printf("%s: bye (%d sessions)\n", *name, b.SessionCount())
}
