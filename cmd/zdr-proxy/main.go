// Command zdr-proxy runs a Proxygen-style L7 proxy (Edge or Origin role)
// with Socket Takeover support. It is the production-shaped deployment of
// the library: run the first generation with -takeover-path, then deploy a
// new binary with the same flags plus -takeover-from to restart with zero
// downtime — the new process receives the listening sockets over the UNIX
// socket and the old one drains and exits.
//
// Example (Origin):
//
//	zdr-proxy -role origin -app 127.0.0.1:9001 -broker 127.0.0.1:9100 \
//	          -tunnel 127.0.0.1:8300 -health 127.0.0.1:8301 \
//	          -takeover-path /tmp/origin.sock
//
// Example (Edge):
//
//	zdr-proxy -role edge -origin 127.0.0.1:8300 \
//	          -web 127.0.0.1:8080 -mqtt 127.0.0.1:8883 -health 127.0.0.1:8081 \
//	          -takeover-path /tmp/edge.sock
//
// Zero-downtime restart of either:
//
//	zdr-proxy <same flags> -takeover-from /tmp/edge.sock
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zdr/internal/disrupt"
	"zdr/internal/faults"
	"zdr/internal/metrics"
	"zdr/internal/netx"
	"zdr/internal/obs"
	"zdr/internal/proxy"
)

func main() {
	role := flag.String("role", "edge", "proxy role: edge | origin")
	name := flag.String("name", "", "instance name (default <role>-<pid>)")
	origins := flag.String("origin", "", "comma-separated origin tunnel addresses (edge role)")
	originHealth := flag.String("origin-health", "", "comma-separated origin health VIP addresses, parallel to -origin (enables load probing for -steering prequal)")
	steering := flag.String("steering", "", "origin steering policy: maglev | prequal (edge role; empty keeps legacy round-robin failover)")
	apps := flag.String("app", "", "comma-separated app server addresses (origin role)")
	brokers := flag.String("broker", "", "comma-separated MQTT broker addresses (origin role)")
	web := flag.String("web", "", "web VIP bind address (edge)")
	mqttAddr := flag.String("mqtt", "", "mqtt VIP bind address (edge)")
	tunnel := flag.String("tunnel", "", "tunnel VIP bind address (origin)")
	health := flag.String("health", "", "health VIP bind address")
	drain := flag.Duration("drain", 20*time.Second, "drain period on shutdown")
	takeoverPath := flag.String("takeover-path", "", "UNIX socket path to serve Socket Takeover on")
	takeoverFrom := flag.String("takeover-from", "", "take the listening sockets over from the instance at this path")
	admin := flag.String("admin", "", "admin endpoint bind address (/metrics, /healthz, /debug/release, /debug/disruption); empty disables")
	profile := flag.Bool("profile", false, "expose /debug/pprof/ and sample Go runtime gauges on the admin endpoint")
	generation := flag.Int("generation", 1, "process generation for disruption-ledger attribution (bump on each deploy)")
	eventLoop := flag.Bool("event-loop", false, "park idle edge connections in an epoll event loop instead of goroutines")
	loopWorkers := flag.Int("event-loop-workers", 0, "event loop worker pool size (0 = GOMAXPROCS)")
	tuningFlags := netx.TuningFlags(flag.CommandLine)
	flag.Parse()

	cfg := proxy.Config{
		Name:        *name,
		DrainPeriod: *drain,
		VIPAddrs:    map[string]string{},
		Tuning:      tuningFlags(),
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("%s-%d", *role, os.Getpid())
	}
	switch *role {
	case "edge":
		cfg.Role = proxy.RoleEdge
		cfg.Origins = split(*origins)
		if len(cfg.Origins) == 0 {
			fatal("edge role requires -origin")
		}
		setAddr(cfg.VIPAddrs, proxy.VIPWeb, *web)
		setAddr(cfg.VIPAddrs, proxy.VIPMQTT, *mqttAddr)
		cfg.Steering = *steering
		cfg.OriginHealth = split(*originHealth)
		if n := len(cfg.OriginHealth); n != 0 && n != len(cfg.Origins) {
			fatal("-origin-health must list one health address per -origin entry (%d vs %d)", n, len(cfg.Origins))
		}
	case "origin":
		cfg.Role = proxy.RoleOrigin
		cfg.AppServers = split(*apps)
		cfg.Brokers = split(*brokers)
		if len(cfg.AppServers) == 0 && len(cfg.Brokers) == 0 {
			fatal("origin role requires -app and/or -broker")
		}
		setAddr(cfg.VIPAddrs, proxy.VIPTunnel, *tunnel)
	default:
		fatal("unknown role %q", *role)
	}
	setAddr(cfg.VIPAddrs, proxy.VIPHealth, *health)
	if *admin != "" {
		cfg.Trace = obs.NewTracer(cfg.Name)
	}

	// Every terminal connection failure is attributed to (cause, release
	// phase, generation) in the ledger, served at /debug/disruption and
	// scraped by the operator's telemetry pipeline.
	led := disrupt.New(cfg.Name, 0)
	cfg.Ledger = led
	cfg.Generation = *generation

	// The loop is per-process state: it is created fresh here and is
	// never part of the takeover transfer — a receiving generation
	// re-registers adopted fds in its own loop.
	if *eventLoop {
		loop, err := netx.NewEventLoop(netx.EventLoopConfig{Workers: *loopWorkers})
		if err != nil {
			fatal("event loop: %v", err)
		}
		defer loop.Close()
		cfg.ConnLoop = loop
	}

	p := proxy.New(cfg, nil)
	if *admin != "" {
		a := &obs.Admin{
			Service:      cfg.Name,
			Registry:     p.Metrics(),
			Tracer:       p.Tracer(),
			Draining:     p.Draining,
			ReleaseState: p.ReleaseState,
			Profile:      *profile,
			Extra:        []*metrics.Registry{netx.RelayMetrics()},
			Debug: map[string]func() any{
				"disruption": func() any { return led.ReportRecent(64) },
			},
		}
		if *profile {
			stopStats := obs.StartRuntimeStats(p.Metrics(), 0)
			defer stopStats()
		}
		srv, err := a.Start(*admin)
		if err != nil {
			fatal("admin listener: %v", err)
		}
		defer srv.Close()
		fmt.Printf("%s: admin on http://%s\n", cfg.Name, srv.Addr())
	}
	if *takeoverFrom != "" {
		res, err := p.TakeoverFrom(*takeoverFrom)
		if err != nil {
			// A pre-commit abort (takeover.ErrAborted) means the old
			// instance kept serving and a redeploy can simply run again;
			// either way this process has nothing to serve.
			fatal("takeover from %s: %v", *takeoverFrom, err)
		}
		fmt.Printf("%s: took over %d sockets in %v via protocol v%d (old instance draining)\n",
			cfg.Name, len(res.VIPs), res.Duration, res.Proto)
	} else {
		if err := p.Listen(); err != nil {
			fatal("listen: %v", err)
		}
		fmt.Printf("%s: listening\n", cfg.Name)
	}
	for _, vip := range []string{proxy.VIPWeb, proxy.VIPMQTT, proxy.VIPTunnel, proxy.VIPHealth} {
		if addr := p.Addr(vip); addr != "" {
			fmt.Printf("  %-7s %s\n", vip, addr)
		}
	}
	if *takeoverPath != "" {
		if err := serveTakeoverWithRetry(p, *takeoverPath); err != nil {
			fatal("takeover server: %v", err)
		}
		fmt.Printf("  takeover path %s armed\n", *takeoverPath)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("%s: draining for %v ...\n", cfg.Name, *drain)
	p.Shutdown()
	fmt.Printf("%s: bye\n", cfg.Name)
}

// serveTakeoverWithRetry absorbs the window in which the previous
// generation's takeover server is still releasing the socket path.
func serveTakeoverWithRetry(p *proxy.Proxy, path string) error {
	bo := faults.Backoff{Base: 50 * time.Millisecond, Max: 250 * time.Millisecond, Factor: 2, Attempts: 20}
	return bo.Retry(context.Background(), func() error {
		return p.ServeTakeover(path)
	})
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func setAddr(m map[string]string, vip, addr string) {
	if addr != "" {
		m[vip] = addr
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
