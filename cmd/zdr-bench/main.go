// Command zdr-bench runs the data-plane micro-benchmarks and writes a
// machine-readable baseline. The checked-in repo-root BENCH_baseline.json
// is produced by:
//
//	go run ./cmd/zdr-bench -out BENCH_baseline.json
//
// Regenerate it on the same class of hardware when a change is expected
// to move the numbers, and quote before/after in the PR description (see
// DESIGN.md §8). CI runs the same benchmarks with -benchtime 1x as a
// smoke test — compile-and-run coverage, not a performance gate.
//
// -takeover-conns N appends a takeover curve: the idleconns demo run at
// several connection scales (auto-clamped to the fd budget), recording
// hand-off wall time, the O(1) epoch-bump cost over a million-entry flow
// table, reconnect-storm absorption, and peak RSS.
//
// -compare FILE re-runs the micro-benchmarks and gates against a stored
// baseline: after calibrating out machine speed via the median new/old
// ns-per-op ratio, any benchmark more than 20% above the calibrated
// expectation — or allocating >20% more per op — fails the run.
//
// -throughput appends the kernel-assisted data-plane suite: splice(2)
// versus pooled-copy TCP relaying (Gbps and syscalls/MB) and batched
// versus packet-at-a-time quicx bursts (syscalls/packet). With -compare,
// the machine-independent numbers gate too: a >20% syscalls-per-unit
// increase or a >20% drop in the splice-over-copy Gbps speedup fails.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"zdr/internal/idleconns"
	"zdr/internal/throughput"
)

// hotPackages are the packages holding data-plane micro-benchmarks.
var hotPackages = []string{
	"./internal/katran",
	"./internal/h2t",
	"./internal/http1",
	"./internal/quicx",
	"./internal/bufpool",
	"./internal/metrics",
	"./internal/netx",
}

// Result is one benchmark line.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// TakeoverPoint is one idleconns demo run on the takeover curve.
type TakeoverPoint struct {
	Conns           int     `json:"conns"`
	Flows           int     `json:"flows"`
	TakeoverMs      float64 `json:"takeover_ms"`
	EpochBumpNs     int64   `json:"epoch_bump_ns"`
	EpochBumpWrites uint64  `json:"epoch_bump_writes"`
	ReconnectMs     float64 `json:"reconnect_ms"`
	PeakRSSKB       int64   `json:"peak_rss_kb"`
}

// Baseline is the emitted document.
type Baseline struct {
	Command       string                   `json:"command"`
	GoVersion     string                   `json:"go_version"`
	GOOS          string                   `json:"goos"`
	GOARCH        string                   `json:"goarch"`
	Benchtime     string                   `json:"benchtime"`
	CPU           string                   `json:"cpu"`
	Benchmarks    []Result                 `json:"benchmarks"`
	TakeoverCurve []TakeoverPoint          `json:"takeover_curve,omitempty"`
	Throughput    []throughput.Measurement `json:"throughput,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_baseline.json", "output file (- for stdout)")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	cpu := flag.String("cpu", "4", "go test -cpu value")
	pattern := flag.String("bench", ".", "go test -bench pattern")
	takeoverConns := flag.Int("takeover-conns", 0, "run the idleconns takeover demo curve up to this many connections (0 = skip)")
	takeoverFlows := flag.Int("takeover-flows", 1<<20, "flow-table population for the takeover curve")
	compare := flag.String("compare", "", "compare against this baseline file instead of writing one; exit 1 on >20% regression")
	tput := flag.Bool("throughput", false, "run the zero-copy/batched-syscall throughput suite (splice vs copy, batched vs unbatched quicx)")
	tputBytes := flag.Int64("throughput-bytes", 256<<20, "bytes to pump through each TCP relay measurement")
	tputBursts := flag.Int("throughput-bursts", 100, "64-packet bursts per quicx measurement")
	tputTable := flag.String("throughput-table", "", "also write the human-readable throughput table to this file")
	flag.Parse()

	args := []string{
		"test", "-run", "^$",
		"-bench", *pattern,
		"-benchmem",
		"-benchtime", *benchtime,
		"-cpu", *cpu,
	}
	args = append(args, hotPackages...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		os.Stdout.Write(raw)
		fmt.Fprintf(os.Stderr, "zdr-bench: go test failed: %v\n", err)
		os.Exit(1)
	}

	results, err := parseBenchOutput(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zdr-bench: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "zdr-bench: no benchmark results parsed")
		os.Exit(1)
	}

	var tputResults []throughput.Measurement
	if *tput {
		fmt.Printf("zdr-bench: throughput suite (%d MB relay, %d bursts)\n", *tputBytes>>20, *tputBursts)
		tputResults, err = throughput.Suite(*tputBytes, *tputBursts, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zdr-bench: throughput suite: %v\n", err)
			os.Exit(1)
		}
		table := throughputTable(tputResults)
		fmt.Print(table)
		if *tputTable != "" {
			if err := os.WriteFile(*tputTable, []byte(table), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "zdr-bench: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *compare != "" {
		if err := compareBaseline(*compare, results, tputResults); err != nil {
			fmt.Fprintf(os.Stderr, "zdr-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("zdr-bench: no regressions against", *compare)
		return
	}

	doc := Baseline{
		Command:    "go run ./cmd/zdr-bench -benchtime " + *benchtime + " -cpu " + *cpu,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchtime:  *benchtime,
		CPU:        *cpu,
		Benchmarks: results,
		Throughput: tputResults,
	}
	if *takeoverConns > 0 {
		curve, err := takeoverCurve(*takeoverConns, *takeoverFlows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zdr-bench: takeover curve: %v\n", err)
			os.Exit(1)
		}
		doc.TakeoverCurve = curve
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "zdr-bench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "zdr-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("zdr-bench: wrote %d results to %s\n", len(results), *out)
}

// takeoverCurve runs the idleconns demo at quarter, half, and full scale
// (each clamped to the fd budget by the harness itself) so the baseline
// records how hand-off time and storm absorption grow with the herd.
func takeoverCurve(maxConns, flows int) ([]TakeoverPoint, error) {
	scales := []int{maxConns / 4, maxConns / 2, maxConns}
	var curve []TakeoverPoint
	for _, conns := range scales {
		if conns == 0 {
			continue
		}
		rep, err := idleconns.Run(idleconns.Config{
			Conns: conns,
			Flows: flows,
			Logf: func(format string, args ...any) {
				fmt.Printf("  "+format, args...)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("%d conns: %w", conns, err)
		}
		curve = append(curve, TakeoverPoint{
			Conns:           rep.Conns,
			Flows:           rep.FlowTableFlows,
			TakeoverMs:      rep.TakeoverMs,
			EpochBumpNs:     rep.EpochBumpNs,
			EpochBumpWrites: rep.EpochBumpWrites,
			ReconnectMs:     rep.ReconnectMs,
			PeakRSSKB:       rep.PeakRSSKB,
		})
		// The harness clamps to the fd budget; once we hit the ceiling,
		// larger requested scales would just repeat the same point.
		if rep.Conns < conns {
			break
		}
	}
	return curve, nil
}

// compareBaseline gates the fresh results against a stored baseline.
// Absolute ns/op is machine-dependent, so the gate first calibrates: the
// median new/old ratio across all shared benchmarks estimates this
// machine's speed relative to the baseline machine; a benchmark regresses
// only if it is >20% slower than that calibrated expectation. Allocs/op
// are machine-independent and gate directly at +20%.
func compareBaseline(path string, fresh []Result, freshTput []throughput.Measurement) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	old := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		old[r.Package+"/"+r.Name] = r
	}

	type pair struct {
		key      string
		ratio    float64
		now, was Result
	}
	var pairs []pair
	var ratios []float64
	for _, r := range fresh {
		key := r.Package + "/" + r.Name
		o, ok := old[key]
		if !ok || o.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		p := pair{key: key, ratio: r.NsPerOp / o.NsPerOp, now: r, was: o}
		pairs = append(pairs, p)
		ratios = append(ratios, p.ratio)
	}
	if len(pairs) == 0 {
		return fmt.Errorf("no benchmarks shared with baseline %s", path)
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}

	const tolerance = 1.20
	var failures []string
	for _, p := range pairs {
		if p.ratio > median*tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: %.1f ns/op vs baseline %.1f (%.2fx; calibrated limit %.2fx)",
				p.key, p.now.NsPerOp, p.was.NsPerOp, p.ratio, median*tolerance))
		}
		if p.now.AllocsPerOp > p.was.AllocsPerOp &&
			float64(p.now.AllocsPerOp) > float64(p.was.AllocsPerOp)*tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d",
				p.key, p.now.AllocsPerOp, p.was.AllocsPerOp))
		}
	}
	failures = append(failures, compareThroughput(base.Throughput, freshTput)...)
	fmt.Printf("zdr-bench: compared %d benchmarks (median speed ratio %.2fx)\n", len(pairs), median)
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// compareThroughput gates the machine-independent throughput numbers.
// Absolute Gbps tracks the host, so it is never compared directly;
// instead the gate holds (a) syscalls per unit of work — per MB relayed,
// per packet routed — within +20% of baseline, and (b) the splice-over-
// copy Gbps speedup ratio, which divides out machine speed, within a
// wider -33% floor (it is the noisiest of the three; see below).
func compareThroughput(base, fresh []throughput.Measurement) []string {
	if len(fresh) == 0 {
		return nil
	}
	if len(base) == 0 {
		fmt.Println("zdr-bench: baseline has no throughput section; skipping throughput gate")
		return nil
	}
	old := make(map[string]throughput.Measurement, len(base))
	for _, m := range base {
		old[m.Name] = m
	}
	now := make(map[string]throughput.Measurement, len(fresh))
	for _, m := range fresh {
		now[m.Name] = m
	}
	const tolerance = 1.20
	var failures []string
	for _, m := range fresh {
		o, ok := old[m.Name]
		if !ok {
			continue
		}
		if o.SyscallsPerMB > 0 && m.SyscallsPerMB > o.SyscallsPerMB*tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: %.2f syscalls/MB vs baseline %.2f (limit %.2f)",
				m.Name, m.SyscallsPerMB, o.SyscallsPerMB, o.SyscallsPerMB*tolerance))
		}
		if o.SyscallsPerPkt > 0 && m.SyscallsPerPkt > o.SyscallsPerPkt*tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: %.3f syscalls/pkt vs baseline %.3f (limit %.3f)",
				m.Name, m.SyscallsPerPkt, o.SyscallsPerPkt, o.SyscallsPerPkt*tolerance))
		}
	}
	// The Gbps ratio divides out absolute machine speed but still carries
	// scheduler noise from two separately timed loopback runs, so its
	// tolerance is wider than the syscall counters': the gate catches
	// "splice collapsed relative to copy", not run-to-run jitter.
	const ratioTolerance = 1.5
	oldRatio := gbpsRatio(old)
	newRatio := gbpsRatio(now)
	if oldRatio > 0 && newRatio > 0 && newRatio < oldRatio/ratioTolerance {
		failures = append(failures, fmt.Sprintf(
			"splice speedup: %.2fx over copy vs baseline %.2fx (floor %.2fx)",
			newRatio, oldRatio, oldRatio/ratioTolerance))
	}
	return failures
}

func gbpsRatio(m map[string]throughput.Measurement) float64 {
	s, c := m["tcp_relay_splice"], m["tcp_relay_copy"]
	if s.Gbps <= 0 || c.Gbps <= 0 {
		return 0
	}
	return s.Gbps / c.Gbps
}

// throughputTable renders the suite results for humans; CI uploads it as
// an artifact alongside the JSON baseline.
func throughputTable(ms []throughput.Measurement) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %9s %14s %15s\n",
		"measurement", "Gbps", "pkts/s", "syscalls/MB", "syscalls/pkt")
	for _, m := range ms {
		gbps, pps, spm, spp := "-", "-", "-", "-"
		if m.Gbps > 0 {
			gbps = fmt.Sprintf("%.2f", m.Gbps)
		}
		if m.Packets > 0 && m.Seconds > 0 {
			pps = fmt.Sprintf("%.0f", float64(m.Packets)/m.Seconds)
		}
		if m.SyscallsPerMB > 0 {
			spm = fmt.Sprintf("%.2f", m.SyscallsPerMB)
		}
		if m.SyscallsPerPkt > 0 {
			spp = fmt.Sprintf("%.3f", m.SyscallsPerPkt)
		}
		fmt.Fprintf(&b, "%-22s %10s %9s %14s %15s\n", m.Name, gbps, pps, spm, spp)
	}
	return b.String()
}

// parseBenchOutput extracts benchmark lines from go test output, tracking
// the current package from the "pkg:" preamble lines.
func parseBenchOutput(raw []byte) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseBenchLine(pkg, line)
		if !ok {
			return nil, fmt.Errorf("unparseable benchmark line: %q", line)
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkForward-4  11105  103.6 ns/op  0 B/op  0 allocs/op
func parseBenchLine(pkg, line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	r := Result{Package: pkg, Name: f[0]}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "MB/s":
			r.MBPerSec, err = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		default:
			// Custom ReportMetric units: ignore.
			err = nil
		}
		if err != nil {
			return Result{}, false
		}
	}
	return r, true
}
