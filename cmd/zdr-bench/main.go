// Command zdr-bench runs the data-plane micro-benchmarks and writes a
// machine-readable baseline. The checked-in repo-root BENCH_baseline.json
// is produced by:
//
//	go run ./cmd/zdr-bench -out BENCH_baseline.json
//
// Regenerate it on the same class of hardware when a change is expected
// to move the numbers, and quote before/after in the PR description (see
// DESIGN.md §8). CI runs the same benchmarks with -benchtime 1x as a
// smoke test — compile-and-run coverage, not a performance gate.
//
// -takeover-conns N appends a takeover curve: the idleconns demo run at
// several connection scales (auto-clamped to the fd budget), recording
// hand-off wall time, the O(1) epoch-bump cost over a million-entry flow
// table, reconnect-storm absorption, and peak RSS.
//
// -compare FILE re-runs the micro-benchmarks and gates against a stored
// baseline: after calibrating out machine speed via the median new/old
// ns-per-op ratio, any benchmark more than 20% above the calibrated
// expectation — or allocating >20% more per op — fails the run.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"zdr/internal/idleconns"
)

// hotPackages are the packages holding data-plane micro-benchmarks.
var hotPackages = []string{
	"./internal/katran",
	"./internal/h2t",
	"./internal/http1",
	"./internal/quicx",
	"./internal/bufpool",
	"./internal/metrics",
}

// Result is one benchmark line.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// TakeoverPoint is one idleconns demo run on the takeover curve.
type TakeoverPoint struct {
	Conns           int     `json:"conns"`
	Flows           int     `json:"flows"`
	TakeoverMs      float64 `json:"takeover_ms"`
	EpochBumpNs     int64   `json:"epoch_bump_ns"`
	EpochBumpWrites uint64  `json:"epoch_bump_writes"`
	ReconnectMs     float64 `json:"reconnect_ms"`
	PeakRSSKB       int64   `json:"peak_rss_kb"`
}

// Baseline is the emitted document.
type Baseline struct {
	Command       string          `json:"command"`
	GoVersion     string          `json:"go_version"`
	GOOS          string          `json:"goos"`
	GOARCH        string          `json:"goarch"`
	Benchtime     string          `json:"benchtime"`
	CPU           string          `json:"cpu"`
	Benchmarks    []Result        `json:"benchmarks"`
	TakeoverCurve []TakeoverPoint `json:"takeover_curve,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_baseline.json", "output file (- for stdout)")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	cpu := flag.String("cpu", "4", "go test -cpu value")
	pattern := flag.String("bench", ".", "go test -bench pattern")
	takeoverConns := flag.Int("takeover-conns", 0, "run the idleconns takeover demo curve up to this many connections (0 = skip)")
	takeoverFlows := flag.Int("takeover-flows", 1<<20, "flow-table population for the takeover curve")
	compare := flag.String("compare", "", "compare against this baseline file instead of writing one; exit 1 on >20% regression")
	flag.Parse()

	args := []string{
		"test", "-run", "^$",
		"-bench", *pattern,
		"-benchmem",
		"-benchtime", *benchtime,
		"-cpu", *cpu,
	}
	args = append(args, hotPackages...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		os.Stdout.Write(raw)
		fmt.Fprintf(os.Stderr, "zdr-bench: go test failed: %v\n", err)
		os.Exit(1)
	}

	results, err := parseBenchOutput(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zdr-bench: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "zdr-bench: no benchmark results parsed")
		os.Exit(1)
	}

	if *compare != "" {
		if err := compareBaseline(*compare, results); err != nil {
			fmt.Fprintf(os.Stderr, "zdr-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("zdr-bench: no regressions against", *compare)
		return
	}

	doc := Baseline{
		Command:    "go run ./cmd/zdr-bench -benchtime " + *benchtime + " -cpu " + *cpu,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchtime:  *benchtime,
		CPU:        *cpu,
		Benchmarks: results,
	}
	if *takeoverConns > 0 {
		curve, err := takeoverCurve(*takeoverConns, *takeoverFlows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zdr-bench: takeover curve: %v\n", err)
			os.Exit(1)
		}
		doc.TakeoverCurve = curve
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "zdr-bench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "zdr-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("zdr-bench: wrote %d results to %s\n", len(results), *out)
}

// takeoverCurve runs the idleconns demo at quarter, half, and full scale
// (each clamped to the fd budget by the harness itself) so the baseline
// records how hand-off time and storm absorption grow with the herd.
func takeoverCurve(maxConns, flows int) ([]TakeoverPoint, error) {
	scales := []int{maxConns / 4, maxConns / 2, maxConns}
	var curve []TakeoverPoint
	for _, conns := range scales {
		if conns == 0 {
			continue
		}
		rep, err := idleconns.Run(idleconns.Config{
			Conns: conns,
			Flows: flows,
			Logf: func(format string, args ...any) {
				fmt.Printf("  "+format, args...)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("%d conns: %w", conns, err)
		}
		curve = append(curve, TakeoverPoint{
			Conns:           rep.Conns,
			Flows:           rep.FlowTableFlows,
			TakeoverMs:      rep.TakeoverMs,
			EpochBumpNs:     rep.EpochBumpNs,
			EpochBumpWrites: rep.EpochBumpWrites,
			ReconnectMs:     rep.ReconnectMs,
			PeakRSSKB:       rep.PeakRSSKB,
		})
		// The harness clamps to the fd budget; once we hit the ceiling,
		// larger requested scales would just repeat the same point.
		if rep.Conns < conns {
			break
		}
	}
	return curve, nil
}

// compareBaseline gates the fresh results against a stored baseline.
// Absolute ns/op is machine-dependent, so the gate first calibrates: the
// median new/old ratio across all shared benchmarks estimates this
// machine's speed relative to the baseline machine; a benchmark regresses
// only if it is >20% slower than that calibrated expectation. Allocs/op
// are machine-independent and gate directly at +20%.
func compareBaseline(path string, fresh []Result) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	old := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		old[r.Package+"/"+r.Name] = r
	}

	type pair struct {
		key      string
		ratio    float64
		now, was Result
	}
	var pairs []pair
	var ratios []float64
	for _, r := range fresh {
		key := r.Package + "/" + r.Name
		o, ok := old[key]
		if !ok || o.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		p := pair{key: key, ratio: r.NsPerOp / o.NsPerOp, now: r, was: o}
		pairs = append(pairs, p)
		ratios = append(ratios, p.ratio)
	}
	if len(pairs) == 0 {
		return fmt.Errorf("no benchmarks shared with baseline %s", path)
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}

	const tolerance = 1.20
	var failures []string
	for _, p := range pairs {
		if p.ratio > median*tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: %.1f ns/op vs baseline %.1f (%.2fx; calibrated limit %.2fx)",
				p.key, p.now.NsPerOp, p.was.NsPerOp, p.ratio, median*tolerance))
		}
		if p.now.AllocsPerOp > p.was.AllocsPerOp &&
			float64(p.now.AllocsPerOp) > float64(p.was.AllocsPerOp)*tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d",
				p.key, p.now.AllocsPerOp, p.was.AllocsPerOp))
		}
	}
	fmt.Printf("zdr-bench: compared %d benchmarks (median speed ratio %.2fx)\n", len(pairs), median)
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// parseBenchOutput extracts benchmark lines from go test output, tracking
// the current package from the "pkg:" preamble lines.
func parseBenchOutput(raw []byte) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseBenchLine(pkg, line)
		if !ok {
			return nil, fmt.Errorf("unparseable benchmark line: %q", line)
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkForward-4  11105  103.6 ns/op  0 B/op  0 allocs/op
func parseBenchLine(pkg, line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	r := Result{Package: pkg, Name: f[0]}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "MB/s":
			r.MBPerSec, err = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		default:
			// Custom ReportMetric units: ignore.
			err = nil
		}
		if err != nil {
			return Result{}, false
		}
	}
	return r, true
}
