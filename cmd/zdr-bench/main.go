// Command zdr-bench runs the data-plane micro-benchmarks and writes a
// machine-readable baseline. The checked-in repo-root BENCH_baseline.json
// is produced by:
//
//	go run ./cmd/zdr-bench -out BENCH_baseline.json
//
// Regenerate it on the same class of hardware when a change is expected
// to move the numbers, and quote before/after in the PR description (see
// DESIGN.md §8). CI runs the same benchmarks with -benchtime 1x as a
// smoke test — compile-and-run coverage, not a performance gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// hotPackages are the packages holding data-plane micro-benchmarks.
var hotPackages = []string{
	"./internal/katran",
	"./internal/h2t",
	"./internal/http1",
	"./internal/quicx",
	"./internal/bufpool",
	"./internal/metrics",
}

// Result is one benchmark line.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the emitted document.
type Baseline struct {
	Command    string   `json:"command"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchtime  string   `json:"benchtime"`
	CPU        string   `json:"cpu"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_baseline.json", "output file (- for stdout)")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	cpu := flag.String("cpu", "4", "go test -cpu value")
	pattern := flag.String("bench", ".", "go test -bench pattern")
	flag.Parse()

	args := []string{
		"test", "-run", "^$",
		"-bench", *pattern,
		"-benchmem",
		"-benchtime", *benchtime,
		"-cpu", *cpu,
	}
	args = append(args, hotPackages...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		os.Stdout.Write(raw)
		fmt.Fprintf(os.Stderr, "zdr-bench: go test failed: %v\n", err)
		os.Exit(1)
	}

	results, err := parseBenchOutput(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zdr-bench: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "zdr-bench: no benchmark results parsed")
		os.Exit(1)
	}

	doc := Baseline{
		Command:    "go run ./cmd/zdr-bench -benchtime " + *benchtime + " -cpu " + *cpu,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchtime:  *benchtime,
		CPU:        *cpu,
		Benchmarks: results,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "zdr-bench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "zdr-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("zdr-bench: wrote %d results to %s\n", len(results), *out)
}

// parseBenchOutput extracts benchmark lines from go test output, tracking
// the current package from the "pkg:" preamble lines.
func parseBenchOutput(raw []byte) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseBenchLine(pkg, line)
		if !ok {
			return nil, fmt.Errorf("unparseable benchmark line: %q", line)
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkForward-4  11105  103.6 ns/op  0 B/op  0 allocs/op
func parseBenchLine(pkg, line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	r := Result{Package: pkg, Name: f[0]}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "MB/s":
			r.MBPerSec, err = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		default:
			// Custom ReportMetric units: ignore.
			err = nil
		}
		if err != nil {
			return Result{}, false
		}
	}
	return r, true
}
