// Command zdr-exp regenerates the paper's tables and figures and prints
// them as text (or markdown) tables. Each experiment ID matches the
// per-experiment index in DESIGN.md.
//
// Usage:
//
//	zdr-exp              # run everything
//	zdr-exp -only F12    # run a single experiment
//	zdr-exp -markdown    # emit markdown (EXPERIMENTS.md source)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"zdr/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run only the experiment with this ID (e.g. F9)")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	flag.Parse()

	exps := experiments.All()
	ran := 0
	for _, e := range exps {
		if *only != "" && e.ID != *only {
			continue
		}
		start := time.Now()
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(tab.Markdown())
		} else {
			fmt.Println(tab.Render())
		}
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -only=%s\n", *only)
		os.Exit(2)
	}
}
