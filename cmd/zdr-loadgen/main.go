// Command zdr-loadgen drives HTTP and MQTT load against an Edge proxy and
// reports client-observed disruptions by class — the end-user vantage
// point the paper's monitoring system collects ("performance metrics from
// the end-user applications ... serve as the source of measuring
// client-side disruptions", §6). Run it while restarting the proxies to
// see the Fig. 12 error classes live.
//
// Usage:
//
//	zdr-loadgen -web 127.0.0.1:8080 -target /static/ping -duration 30s
//	zdr-loadgen -web 127.0.0.1:8080 -mqtt 127.0.0.1:8883 -mqtt-conns 20
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"zdr/internal/http1"
	"zdr/internal/mqtt"
)

type stats struct {
	ok, connReset, streamAbort, timeout, writeTimeout atomic.Int64
	mqttDrops                                         atomic.Int64
	latency                                           sync.Mutex
	latencies                                         []float64
}

func main() {
	web := flag.String("web", "", "edge web VIP address")
	mqttAddr := flag.String("mqtt", "", "edge MQTT VIP address (optional)")
	target := flag.String("target", "/static/ping", "HTTP request target")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	concurrency := flag.Int("c", 4, "concurrent HTTP workers")
	mqttConns := flag.Int("mqtt-conns", 0, "persistent MQTT connections to hold")
	timeout := flag.Duration("timeout", time.Second, "per-request timeout")
	flag.Parse()
	if *web == "" && *mqttAddr == "" {
		fmt.Fprintln(os.Stderr, "need -web and/or -mqtt")
		os.Exit(2)
	}

	var st stats
	stop := make(chan struct{})
	var wg sync.WaitGroup

	if *web != "" {
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					start := time.Now()
					classify(&st, doRequest(*web, *target, *timeout))
					st.latency.Lock()
					st.latencies = append(st.latencies, float64(time.Since(start).Microseconds()))
					st.latency.Unlock()
					time.Sleep(time.Millisecond)
				}
			}()
		}
	}

	if *mqttAddr != "" && *mqttConns > 0 {
		for i := 0; i < *mqttConns; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				holdMQTT(&st, *mqttAddr, fmt.Sprintf("loadgen-%d-%d", os.Getpid(), i), stop)
			}(i)
		}
	}

	fmt.Printf("load running for %v ...\n", *duration)
	time.Sleep(*duration)
	close(stop)
	wg.Wait()

	total := st.ok.Load() + st.connReset.Load() + st.streamAbort.Load() + st.timeout.Load() + st.writeTimeout.Load()
	fmt.Printf("\nHTTP requests: %d\n", total)
	fmt.Printf("  ok             %d\n", st.ok.Load())
	fmt.Printf("  conn. rst.     %d\n", st.connReset.Load())
	fmt.Printf("  stream abort   %d\n", st.streamAbort.Load())
	fmt.Printf("  timeout        %d\n", st.timeout.Load())
	fmt.Printf("  write timeout  %d\n", st.writeTimeout.Load())
	st.latency.Lock()
	if n := len(st.latencies); n > 0 {
		var sum float64
		for _, v := range st.latencies {
			sum += v
		}
		fmt.Printf("  mean latency   %.0f us\n", sum/float64(n))
	}
	st.latency.Unlock()
	if *mqttConns > 0 {
		fmt.Printf("MQTT connections: %d held, %d dropped\n", *mqttConns, st.mqttDrops.Load())
	}
}

type outcome int

const (
	outOK outcome = iota
	outConnReset
	outStreamAbort
	outTimeout
	outWriteTimeout
)

func classify(st *stats, o outcome) {
	switch o {
	case outOK:
		st.ok.Add(1)
	case outConnReset:
		st.connReset.Add(1)
	case outStreamAbort:
		st.streamAbort.Add(1)
	case outTimeout:
		st.timeout.Add(1)
	case outWriteTimeout:
		st.writeTimeout.Add(1)
	}
}

func doRequest(addr, target string, timeout time.Duration) outcome {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return outConnReset
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", target, nil, 0)); err != nil {
		if isTimeout(err) {
			return outWriteTimeout
		}
		return outConnReset
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		if isTimeout(err) {
			return outTimeout
		}
		return outConnReset
	}
	if _, err := http1.ReadFullBody(resp.Body); err != nil {
		if isTimeout(err) {
			return outTimeout
		}
		return outConnReset
	}
	if resp.StatusCode >= 500 {
		return outStreamAbort
	}
	return outOK
}

func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// holdMQTT keeps one persistent MQTT connection pinging; every drop is a
// client-visible disruption (re-connects and holds again).
func holdMQTT(st *stats, addr, id string, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			st.mqttDrops.Add(1)
			time.Sleep(500 * time.Millisecond)
			continue
		}
		c := mqtt.NewClient(conn, id, true)
		if _, err := c.Connect(0, 2*time.Second); err != nil {
			st.mqttDrops.Add(1)
			time.Sleep(500 * time.Millisecond)
			continue
		}
		c.Subscribe(2*time.Second, "notif/"+id)
		for {
			select {
			case <-stop:
				c.Disconnect()
				return
			case <-c.Done():
				st.mqttDrops.Add(1)
				goto reconnect
			case <-time.After(500 * time.Millisecond):
				if err := c.Ping(2 * time.Second); err != nil {
					st.mqttDrops.Add(1)
					c.Disconnect()
					goto reconnect
				}
			}
		}
	reconnect:
		time.Sleep(200 * time.Millisecond)
	}
}
