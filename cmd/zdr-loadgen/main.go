// Command zdr-loadgen drives HTTP and MQTT load against an Edge proxy and
// reports client-observed disruptions by class — the end-user vantage
// point the paper's monitoring system collects ("performance metrics from
// the end-user applications ... serve as the source of measuring
// client-side disruptions", §6). Run it while restarting the proxies to
// see the Fig. 12 error classes live.
//
// Usage:
//
//	zdr-loadgen -web 127.0.0.1:8080 -target /static/ping -duration 30s
//	zdr-loadgen -web 127.0.0.1:8080 -mqtt 127.0.0.1:8883 -mqtt-conns 20
//
// Idle-connection storm mode holds a herd of established keep-alive
// connections (the population an event-loop edge parks in epoll),
// counts any that the server severs while idle — e.g. a release
// terminating its drained generation — and then wakes every survivor at
// once, re-dialing casualties, to measure reconnect-storm absorption:
//
//	zdr-loadgen -web 127.0.0.1:8080 -idle-conns 5000 -duration 30s
//
// Bulk-transfer mode streams large POST bodies over keep-alive
// connections and reports client-observed Gbps — the workload that
// exercises the proxies' splice(2)/pooled-copy relay pumps end to end:
//
//	zdr-loadgen -web 127.0.0.1:8080 -throughput -throughput-mb 16 -c 2
//
// Steering mode runs a client-side katran instance over a set of edge
// web VIPs — the loadgen plays the L4 tier, so a rolling edge restart
// can be watched from the steering vantage point. With -steering
// prequal and -steer-health, draining edges advertise their phase over
// the load-probe channel and the loadgen bleeds new flows off them:
//
//	zdr-loadgen -steer-backends 127.0.0.1:8080,127.0.0.1:8090 \
//	            -steer-health 127.0.0.1:8081,127.0.0.1:8091 \
//	            -steering prequal -duration 30s
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zdr/internal/http1"
	"zdr/internal/katran"
	"zdr/internal/metrics"
	"zdr/internal/mqtt"
)

type stats struct {
	ok, connReset, streamAbort, timeout, writeTimeout atomic.Int64
	mqttDrops                                         atomic.Int64
	idleDrops, stormOK, stormReconnect, stormFail     atomic.Int64
	bulkBytes                                         atomic.Int64
	latency                                           sync.Mutex
	latencies                                         []float64
}

func main() {
	web := flag.String("web", "", "edge web VIP address")
	mqttAddr := flag.String("mqtt", "", "edge MQTT VIP address (optional)")
	target := flag.String("target", "/static/ping", "HTTP request target")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	concurrency := flag.Int("c", 4, "concurrent HTTP workers")
	mqttConns := flag.Int("mqtt-conns", 0, "persistent MQTT connections to hold")
	idleConns := flag.Int("idle-conns", 0, "established keep-alive HTTP connections to hold idle, then wake all at once")
	timeout := flag.Duration("timeout", time.Second, "per-request timeout")
	tput := flag.Bool("throughput", false, "bulk-transfer mode: stream large POST bodies and report Gbps instead of request-rate load")
	tputMB := flag.Int("throughput-mb", 16, "POST body size per bulk transfer, in MiB")
	steerBackends := flag.String("steer-backends", "", "comma-separated edge web VIPs to steer across with a client-side katran instance (replaces -web for request load)")
	steerHealth := flag.String("steer-health", "", "comma-separated edge health VIPs, parallel to -steer-backends (enables health checks and prequal load probing)")
	steering := flag.String("steering", "maglev", "steering policy for -steer-backends: maglev | prequal")
	flag.Parse()
	if *web == "" && *mqttAddr == "" && *steerBackends == "" {
		fmt.Fprintln(os.Stderr, "need -web, -steer-backends and/or -mqtt")
		os.Exit(2)
	}

	// Steering mode: the loadgen runs its own katran instance and picks a
	// backend per request; `pick` stays nil otherwise and workers hit -web
	// directly.
	var pick func() (string, error)
	if *steerBackends != "" {
		backends := splitList(*steerBackends)
		healths := splitList(*steerHealth)
		if len(healths) != 0 && len(healths) != len(backends) {
			fmt.Fprintln(os.Stderr, "-steer-health must list one address per -steer-backends entry")
			os.Exit(2)
		}
		reg := metrics.NewRegistry()
		lb := katran.New("loadgen", katran.Config{
			Policy: katran.NewPolicy(*steering, katran.PrequalConfig{}, reg),
		}, reg)
		defer lb.Close()
		for i, addr := range backends {
			b := katran.Backend{Name: addr, Addr: addr}
			if len(healths) > 0 {
				b.HealthAddr = healths[i]
			}
			lb.AddBackend(b, true)
		}
		if len(healths) > 0 {
			lb.StartHealthChecks(500 * time.Millisecond)
		}
		var seq atomic.Uint64
		pick = func() (string, error) {
			b, err := lb.Steer(seq.Add(1))
			if err != nil {
				return "", err
			}
			return b.Addr, nil
		}
		if *web == "" {
			*web = backends[0] // idle-herd / bulk modes fall back to the first backend
		}
	}

	var st stats
	stop := make(chan struct{})
	var wg sync.WaitGroup

	if *web != "" && *tput {
		bulkTimeout := *timeout
		if bulkTimeout < 30*time.Second {
			bulkTimeout = 30 * time.Second
		}
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				bulkWorker(&st, *web, *target, int64(*tputMB)<<20, bulkTimeout, stop)
			}()
		}
	} else if *web != "" {
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					addr := *web
					if pick != nil {
						var err error
						if addr, err = pick(); err != nil {
							st.connReset.Add(1)
							time.Sleep(10 * time.Millisecond)
							continue
						}
					}
					start := time.Now()
					classify(&st, doRequest(addr, *target, *timeout))
					st.latency.Lock()
					st.latencies = append(st.latencies, float64(time.Since(start).Microseconds()))
					st.latency.Unlock()
					time.Sleep(time.Millisecond)
				}
			}()
		}
	}

	var idleHerd []net.Conn
	if *web != "" && *idleConns > 0 {
		idleHerd = establishIdleHerd(&st, *web, *idleConns)
		fmt.Printf("holding %d idle connections\n", len(idleHerd))
	}

	if *mqttAddr != "" && *mqttConns > 0 {
		for i := 0; i < *mqttConns; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				holdMQTT(&st, *mqttAddr, fmt.Sprintf("loadgen-%d-%d", os.Getpid(), i), stop)
			}(i)
		}
	}

	fmt.Printf("load running for %v ...\n", *duration)
	loadStart := time.Now()
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	loadElapsed := time.Since(loadStart).Seconds()

	var stormMs float64
	if len(idleHerd) > 0 {
		stormMs = wakeStorm(&st, *web, *target, idleHerd, *timeout)
	}

	total := st.ok.Load() + st.connReset.Load() + st.streamAbort.Load() + st.timeout.Load() + st.writeTimeout.Load()
	fmt.Printf("\nHTTP requests: %d\n", total)
	if *tput {
		moved := st.bulkBytes.Load()
		fmt.Printf("Bulk transfer: %d MiB in %.1fs = %.2f Gbps (%d workers, %d MiB bodies)\n",
			moved>>20, loadElapsed, float64(moved)*8/loadElapsed/1e9, *concurrency, *tputMB)
	}
	fmt.Printf("  ok             %d\n", st.ok.Load())
	fmt.Printf("  conn. rst.     %d\n", st.connReset.Load())
	fmt.Printf("  stream abort   %d\n", st.streamAbort.Load())
	fmt.Printf("  timeout        %d\n", st.timeout.Load())
	fmt.Printf("  write timeout  %d\n", st.writeTimeout.Load())
	st.latency.Lock()
	if n := len(st.latencies); n > 0 {
		var sum float64
		for _, v := range st.latencies {
			sum += v
		}
		fmt.Printf("  mean latency   %.0f us\n", sum/float64(n))
	}
	st.latency.Unlock()
	if *mqttConns > 0 {
		fmt.Printf("MQTT connections: %d held, %d dropped\n", *mqttConns, st.mqttDrops.Load())
	}
	if len(idleHerd) > 0 {
		fmt.Printf("Idle herd: %d held, %d severed while idle\n", len(idleHerd), st.idleDrops.Load())
		fmt.Printf("  storm: %d ok, %d via reconnect, %d failed, %.1fms wall\n",
			st.stormOK.Load(), st.stormReconnect.Load(), st.stormFail.Load(), stormMs)
		if st.stormFail.Load() > 0 {
			os.Exit(1)
		}
	}
}

// establishIdleHerd dials n keep-alive connections and leaves them idle.
// Each gets one warm-up request so a parked-vs-goroutine edge treats it
// as an established, previously-served session.
func establishIdleHerd(st *stats, addr string, n int) []net.Conn {
	herd := make([]net.Conn, 0, n)
	for i := 0; i < n; i++ {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "idle herd: dial %d/%d: %v\n", i, n, err)
			break
		}
		herd = append(herd, conn)
	}
	return herd
}

// wakeStorm fires one request on every held connection simultaneously —
// the reconnect storm a terminated generation produces. Severed conns
// re-dial once; only a failed re-dial counts as client-visible.
func wakeStorm(st *stats, addr, target string, herd []net.Conn, timeout time.Duration) float64 {
	fmt.Printf("waking %d idle connections ...\n", len(herd))
	start := time.Now()
	var wg sync.WaitGroup
	for _, conn := range herd {
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			if keepAliveGet(conn, target, timeout) == nil {
				st.stormOK.Add(1)
				return
			}
			st.idleDrops.Add(1)
			re, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				st.stormFail.Add(1)
				return
			}
			defer re.Close()
			if keepAliveGet(re, target, timeout) == nil {
				st.stormReconnect.Add(1)
			} else {
				st.stormFail.Add(1)
			}
		}(conn)
	}
	wg.Wait()
	return float64(time.Since(start).Microseconds()) / 1e3
}

// keepAliveGet runs one GET on an already-established connection.
func keepAliveGet(conn net.Conn, target string, timeout time.Duration) error {
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", target, nil, 0)); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return err
	}
	if _, err := http1.ReadFullBody(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode >= 500 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

type outcome int

const (
	outOK outcome = iota
	outConnReset
	outStreamAbort
	outTimeout
	outWriteTimeout
)

func classify(st *stats, o outcome) {
	switch o {
	case outOK:
		st.ok.Add(1)
	case outConnReset:
		st.connReset.Add(1)
	case outStreamAbort:
		st.streamAbort.Add(1)
	case outTimeout:
		st.timeout.Add(1)
	case outWriteTimeout:
		st.writeTimeout.Add(1)
	}
}

func doRequest(addr, target string, timeout time.Duration) outcome {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return outConnReset
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", target, nil, 0)); err != nil {
		if isTimeout(err) {
			return outWriteTimeout
		}
		return outConnReset
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		if isTimeout(err) {
			return outTimeout
		}
		return outConnReset
	}
	if _, err := http1.ReadFullBody(resp.Body); err != nil {
		if isTimeout(err) {
			return outTimeout
		}
		return outConnReset
	}
	if resp.StatusCode >= 500 {
		return outStreamAbort
	}
	return outOK
}

// bulkWorker streams bodyLen-byte POSTs back to back over one keep-alive
// connection, re-dialing on error, until stopped. Bytes moved in each
// direction count toward the Gbps report; the echo appserver reflects the
// body, so every request exercises both proxy relay directions.
func bulkWorker(st *stats, addr, target string, bodyLen int64, timeout time.Duration, stop <-chan struct{}) {
	chunk := make([]byte, 256<<10)
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-stop:
			return
		default:
		}
		if conn == nil {
			var err error
			conn, err = net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				st.connReset.Add(1)
				time.Sleep(100 * time.Millisecond)
				continue
			}
		}
		conn.SetWriteDeadline(time.Now().Add(timeout))
		body := &repeatReader{chunk: chunk, left: bodyLen}
		if _, err := http1.WriteRequest(conn, http1.NewRequest("POST", target, body, bodyLen)); err != nil {
			st.connReset.Add(1)
			conn.Close()
			conn = nil
			continue
		}
		conn.SetReadDeadline(time.Now().Add(timeout))
		resp, err := http1.ReadResponse(bufio.NewReader(conn))
		if err != nil {
			st.connReset.Add(1)
			conn.Close()
			conn = nil
			continue
		}
		down, err := io.Copy(io.Discard, resp.Body)
		if err != nil || resp.StatusCode >= 500 {
			st.streamAbort.Add(1)
			conn.Close()
			conn = nil
			continue
		}
		st.ok.Add(1)
		st.bulkBytes.Add(bodyLen + down)
	}
}

// repeatReader yields `left` bytes from a recycled chunk.
type repeatReader struct {
	chunk []byte
	left  int64
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.left <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > r.left {
		n = int(r.left)
	}
	if n > len(r.chunk) {
		n = len(r.chunk)
	}
	copy(p, r.chunk[:n])
	r.left -= int64(n)
	return n, nil
}

func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// holdMQTT keeps one persistent MQTT connection pinging; every drop is a
// client-visible disruption (re-connects and holds again).
func holdMQTT(st *stats, addr, id string, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			st.mqttDrops.Add(1)
			time.Sleep(500 * time.Millisecond)
			continue
		}
		c := mqtt.NewClient(conn, id, true)
		if _, err := c.Connect(0, 2*time.Second); err != nil {
			st.mqttDrops.Add(1)
			time.Sleep(500 * time.Millisecond)
			continue
		}
		c.Subscribe(2*time.Second, "notif/"+id)
		for {
			select {
			case <-stop:
				c.Disconnect()
				return
			case <-c.Done():
				st.mqttDrops.Add(1)
				goto reconnect
			case <-time.After(500 * time.Millisecond):
				if err := c.Ping(2 * time.Second); err != nil {
					st.mqttDrops.Add(1)
					c.Disconnect()
					goto reconnect
				}
			}
		}
	reconnect:
		time.Sleep(200 * time.Millisecond)
	}
}
