// Command zdr-appserver runs an HHVM-style application server with
// Partial Post Replay. SIGTERM triggers the paper's restart behaviour:
// drain briefly, hand in-flight POSTs back to the downstream proxy with
// 379, exit.
//
// Usage:
//
//	zdr-appserver -addr 127.0.0.1:9001 -mode ppr -drain 12s
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zdr/internal/appserver"
	"zdr/internal/http1"
	"zdr/internal/netx"
	"zdr/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	name := flag.String("name", "", "instance name (default appserver-<pid>)")
	mode := flag.String("mode", "ppr", "in-flight POST handling on restart: ppr | 500 | 307")
	drain := flag.Duration("drain", 12*time.Second, "drain period")
	admin := flag.String("admin", "", "admin endpoint bind address (/metrics, /healthz); empty disables")
	profile := flag.Bool("profile", false, "expose /debug/pprof/ and sample Go runtime gauges on the admin endpoint")
	tuningFlags := netx.TuningFlags(flag.CommandLine)
	flag.Parse()

	var m appserver.Mode
	switch *mode {
	case "ppr":
		m = appserver.ModePPR
	case "500":
		m = appserver.ModeFail500
	case "307":
		m = appserver.ModeRedirect307
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *name == "" {
		*name = fmt.Sprintf("appserver-%d", os.Getpid())
	}

	srv := appserver.New(appserver.Config{
		Name:        *name,
		Mode:        m,
		DrainPeriod: *drain,
		Tuning:      tuningFlags(),
		Handler: func(req *http1.Request, body []byte) *http1.Response {
			// Echo service: the default app used by examples and load
			// generators; GETs answer with a small status document.
			if req.Method == "GET" {
				doc := fmt.Sprintf("ok %s %s\n", *name, req.Target)
				return http1.NewResponse(200, bytes.NewReader([]byte(doc)), int64(len(doc)))
			}
			return http1.NewResponse(200, bytes.NewReader(body), int64(len(body)))
		},
	}, nil)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: serving on %s (mode=%s drain=%v)\n", *name, bound, *mode, *drain)
	if *admin != "" {
		a := &obs.Admin{Service: *name, Registry: srv.Metrics(), Draining: srv.Draining, Profile: *profile}
		if *profile {
			stopStats := obs.StartRuntimeStats(srv.Metrics(), 0)
			defer stopStats()
		}
		asrv, err := a.Start(*admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer asrv.Close()
		fmt.Printf("%s: admin on http://%s\n", *name, asrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("%s: restart signalled; draining and handing back in-flight POSTs\n", *name)
	srv.Shutdown()
	fmt.Printf("%s: bye\n", *name)
}
