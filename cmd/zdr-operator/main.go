// Command zdr-operator runs the fleet release control plane against a
// simulated fleet of in-process Edge proxies (real sockets, real Socket
// Takeover hand-offs). It drives a canary-first, health-gated rollout:
// the canary batch restarts into its drain-undo window, serves live
// traffic while the gate watches counters and probes, and is promoted or
// rolled back batch by batch.
//
// The rollout is observable and steerable while it runs:
//
//	/debug/rollout   orchestrator status (batches, verdicts, gate outcome)
//	/debug/fleet     per-node slot state (generation, phase, undo counts)
//	SIGUSR1          resume a paused rollout (re-drive remaining nodes)
//	SIGUSR2          abort a paused rollout
//	SIGINT/SIGTERM   kill the operator mid-rollout (no terminal journal
//	                 record — restart with -resume to recover)
//
// Examples:
//
//	zdr-operator -nodes 24 -canary 2 -journal /tmp/rollout.jsonl -admin 127.0.0.1:9800
//	zdr-operator -nodes 24 -bad                  # watch the gate refuse a broken build
//	zdr-operator -journal /tmp/rollout.jsonl -resume   # recover a killed operator
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"zdr/internal/core"
	"zdr/internal/disrupt"
	"zdr/internal/fleet"
	"zdr/internal/http1"
	"zdr/internal/metrics"
	"zdr/internal/obs"
	"zdr/internal/proxy"
)

func main() {
	nodes := flag.Int("nodes", 12, "simulated fleet size")
	canary := flag.Int("canary", 1, "canary batch size")
	growth := flag.Int("growth", 2, "batch growth factor after each promoted batch")
	maxBatch := flag.Int("max-batch", 0, "batch size cap (0 = uncapped)")
	healthWindow := flag.Duration("health-window", 2*time.Second, "post-commit observation window per batch")
	probeInterval := flag.Duration("probe-interval", 50*time.Millisecond, "orchestrator probe pacing")
	windowTimeout := flag.Duration("window-timeout", 10*time.Second, "bound on a node reaching its canary window")
	batchDelay := flag.Duration("batch-delay", 0, "pause between promoted batches")
	maxHold := flag.Duration("max-hold", 30*time.Second, "node-side window bound before self-rollback")
	journalPath := flag.String("journal", "", "rollout write-ahead log path (empty = unjournaled)")
	resume := flag.Bool("resume", false, "recover the journal and resume the interrupted rollout")
	admin := flag.String("admin", "", "admin endpoint bind address (/debug/rollout, /debug/fleet, /debug/telemetry); empty disables")
	profile := flag.Bool("profile", false, "expose /debug/pprof/ and sample Go runtime gauges on the admin endpoint")
	bad := flag.Bool("bad", false, "ship a broken build (every request 503s) to exercise the gate")
	ungated := flag.Bool("ungated", false, "disable canary windows and gating (the pre-gate release process)")
	load := flag.Bool("load", true, "drive continuous client load at every node")
	name := flag.String("name", "rollout", "rollout name (journal attribution, fence ownership)")
	flag.Parse()

	dir, err := os.MkdirTemp("", "zdr-operator-")
	if err != nil {
		fatal("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	sims := make([]*simNode, *nodes)
	for i := range sims {
		s, err := newSimNode(dir, i, *maxHold, *ungated)
		if err != nil {
			fatal("node %d: %v", i, err)
		}
		defer s.slot.Close()
		sims[i] = s
	}
	fmt.Printf("zdr-operator: %d-node fleet up (generation 1 serving)\n", len(sims))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	if *load {
		for _, s := range sims {
			wg.Add(1)
			go s.hammer(stop, &wg)
		}
		time.Sleep(200 * time.Millisecond) // error-free baseline history
	}

	// Ship the build: flipping `good` changes what the NEXT generation
	// serves, exactly like pushing a release artifact.
	if *bad {
		for _, s := range sims {
			s.good.Store(false)
		}
		fmt.Println("zdr-operator: shipping a BAD build — the gate should refuse it")
	}

	cfg := fleet.Config{
		Name:          *name,
		CanarySize:    *canary,
		GrowthFactor:  *growth,
		MaxBatchSize:  *maxBatch,
		HealthWindow:  *healthWindow,
		ProbeInterval: *probeInterval,
		WindowTimeout: *windowTimeout,
		BatchDelay:    *batchDelay,
		Ungated:       *ungated,
		Trace:         obs.NewTracer("zdr-operator"),
		Fence:         fleet.NewFence(),
	}
	if *journalPath != "" {
		if *resume {
			recs, err := fleet.Replay(*journalPath)
			if err != nil {
				fatal("journal replay: %v", err)
			}
			prog := fleet.Recover(recs)
			if prog.Rollout != "" {
				cfg.Resume = &prog
				fmt.Printf("zdr-operator: recovered rollout %q — %d promoted, %d in flight, %d rolled back\n",
					prog.Rollout, len(prog.Promoted), len(prog.InFlight), len(prog.RolledBack))
			}
		}
		j, err := fleet.OpenJournal(*journalPath)
		if err != nil {
			fatal("journal: %v", err)
		}
		defer j.Close()
		cfg.Journal = j
	}

	fnodes := make([]*fleet.Node, len(sims))
	for i, s := range sims {
		fnodes[i] = s.node
	}
	o, err := fleet.New(cfg, fnodes)
	if err != nil {
		fatal("orchestrator: %v", err)
	}

	// The telemetry pipeline: scrape every node's metrics + ledger and
	// merge fleet-wide. Served live at /debug/telemetry and printed as
	// the final accounting when the rollout ends.
	tele := &fleet.Telemetry{Nodes: fnodes}

	if *admin != "" {
		operatorReg := metrics.NewRegistry()
		a := &obs.Admin{
			Service:  "zdr-operator",
			Registry: operatorReg,
			Tracer:   cfg.Trace,
			Profile:  *profile,
			Debug: map[string]func() any{
				"rollout": func() any { return o.Status() },
				"fleet": func() any {
					states := make([]obs.SlotState, len(sims))
					for i, s := range sims {
						states[i] = s.slot.State()
					}
					return states
				},
				"telemetry": func() any { return tele.Scrape() },
			},
		}
		if *profile {
			stopStats := obs.StartRuntimeStats(operatorReg, 0)
			defer stopStats()
		}
		srv, err := a.Start(*admin)
		if err != nil {
			fatal("admin listener: %v", err)
		}
		defer srv.Close()
		fmt.Printf("zdr-operator: admin on http://%s (/debug/rollout, /debug/fleet, /debug/telemetry)\n", srv.Addr())
	}

	// SIGUSR1/SIGUSR2 steer a paused rollout; SIGINT/SIGTERM kill the
	// operator without a terminal journal record (restart with -resume).
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGUSR1, syscall.SIGUSR2)
	go func() {
		for s := range sig {
			switch s {
			case syscall.SIGUSR1:
				fmt.Println("zdr-operator: resume requested")
				if err := o.Decide(true); err != nil {
					fmt.Printf("zdr-operator: resume: %v\n", err)
				}
			case syscall.SIGUSR2:
				fmt.Println("zdr-operator: abort requested")
				if err := o.Decide(false); err != nil {
					fmt.Printf("zdr-operator: abort: %v\n", err)
				}
			default:
				fmt.Println("zdr-operator: killed mid-rollout (journal keeps the resume point)")
				o.Close()
				return
			}
		}
	}()

	// Surface pauses as they happen so an operator at a terminal knows to
	// inspect /debug/rollout and signal a decision.
	pauseWatch := make(chan struct{})
	go func() {
		last := ""
		for {
			select {
			case <-pauseWatch:
				return
			case <-time.After(100 * time.Millisecond):
			}
			st := o.Status()
			if st.State == fleet.StatePaused && st.Reason != last {
				last = st.Reason
				fmt.Printf("zdr-operator: PAUSED — %s\n", st.Reason)
				fmt.Println("zdr-operator: SIGUSR1 resumes, SIGUSR2 aborts")
			}
		}
	}()

	runErr := o.Run()
	close(pauseWatch)
	close(stop)
	wg.Wait()

	st := o.Status()
	fmt.Printf("zdr-operator: rollout %q finished: state=%s", cfg.Name, st.State)
	if st.Reason != "" {
		fmt.Printf(" (%s)", st.Reason)
	}
	fmt.Println()
	promoted, rolledBack := 0, 0
	for _, n := range st.Nodes {
		if n.Promoted {
			promoted++
		}
		if n.RolledBack {
			rolledBack++
		}
	}
	var ok, serverErr, transport int64
	for _, s := range sims {
		ok += s.ok.Load()
		serverErr += s.serverErr.Load()
		transport += s.transport.Load()
	}
	fmt.Printf("zdr-operator: %d promoted, %d rolled back; client load: %d ok, %d server errors, %d transport failures\n",
		promoted, rolledBack, ok, serverErr, transport)

	// Final fleet-wide disruption accounting: merge every node's metrics
	// and ledger, then report the §6 numbers — requests, tail latency, and
	// attributed terminal failures by cause × release phase.
	rep := tele.Scrape()
	fmt.Printf("zdr-operator: telemetry — %d/%d nodes scraped, %d requests, p99 %.6fs, disruption rate %.6f (%d terminal, %d unattributed)\n",
		rep.ScrapedNodes, rep.TotalNodes, rep.Requests, rep.LatencyP99, rep.DisruptionRate,
		rep.Disruption.Terminal, rep.Disruption.Unattributed)
	cells := append([]disrupt.Cell(nil), rep.CausePhase...)
	fleet.SortCellsByCount(cells)
	for i, c := range cells {
		if i == 5 {
			fmt.Printf("zdr-operator:   ... %d more cause-phase cells\n", len(cells)-i)
			break
		}
		fmt.Printf("zdr-operator:   %6d  %s during %s\n", c.Count, c.Cause, c.Phase)
	}
	if runErr != nil {
		fatal("rollout: %v", runErr)
	}
}

// simNode is one fleet member: a real Edge ProxySlot whose generations
// share a metrics registry and install the node's canary window as their
// readiness gate (see internal/fleet's chaos tests for the same shape).
type simNode struct {
	name string
	slot *core.ProxySlot
	reg  *metrics.Registry
	win  *fleet.CanaryWindow
	led  *disrupt.Ledger
	node *fleet.Node
	good atomic.Bool
	// webAddr is captured once after Start: the VIP address survives
	// takeovers, and querying the slot mid-hand-off is racy.
	webAddr string

	ok        atomic.Int64
	serverErr atomic.Int64
	transport atomic.Int64
}

func newSimNode(dir string, i int, maxHold time.Duration, ungated bool) (*simNode, error) {
	name := fmt.Sprintf("edge-%02d", i)
	s := &simNode{name: name, reg: metrics.NewRegistry(), led: disrupt.New(name, 0)}
	if !ungated {
		s.win = fleet.NewCanaryWindow(maxHold)
	}
	s.good.Store(true)
	gen := 0
	s.slot = &core.ProxySlot{
		SlotName:  name,
		Path:      filepath.Join(dir, name+".sock"),
		DrainWait: 50 * time.Millisecond,
		Build: func() *proxy.Proxy {
			gen++
			cfg := proxy.Config{
				Name:                 fmt.Sprintf("%s-g%d", name, gen),
				Role:                 proxy.RoleEdge,
				TakeoverReadyTimeout: maxHold + 30*time.Second,
				Ledger:               s.led,
				Generation:           gen,
			}
			if s.win != nil {
				cfg.ReadyGate = s.win.Gate
			}
			if s.good.Load() {
				cfg.StaticContent = map[string][]byte{"/hello": []byte("hello from " + name + "\n")}
			}
			return proxy.New(cfg, s.reg)
		},
	}
	if err := s.slot.Start(); err != nil {
		return nil, err
	}
	s.webAddr = s.slot.Current().Addr(proxy.VIPWeb)
	s.node = fleet.ProxyNode(fmt.Sprintf("vip-%02d", i), s.slot, s.reg, func() string { return s.webAddr }, "/hello", s.win)
	s.node.Disruption = s.led.Report
	return s, nil
}

// hammer drives continuous GETs at the node until stop closes, counting
// transport failures (what zero-downtime release must keep at zero)
// separately from server errors (what a bad build produces).
func (s *simNode) hammer(stop chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-stop:
			return
		default:
		}
		code, err := getHello(s.webAddr)
		switch {
		case err != nil:
			s.transport.Add(1)
		case code == 200:
			s.ok.Add(1)
		default:
			s.serverErr.Add(1)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getHello(addr string) (int, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/hello", nil, 0)); err != nil {
		return 0, err
	}
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return 0, err
	}
	if _, err := http1.ReadFullBody(resp.Body); err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
