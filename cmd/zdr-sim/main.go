// Command zdr-sim runs the virtual-time fleet simulator for one rolling
// release and prints the capacity/CPU timeline — the tool behind the
// cluster-scale figures.
//
// Usage:
//
//	zdr-sim -machines 100 -batch 0.2 -drain 20m -strategy zdr
//	zdr-sim -strategy hard -batch 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"zdr/internal/cluster"
)

func main() {
	machines := flag.Int("machines", 100, "cluster size")
	batch := flag.Float64("batch", 0.2, "batch fraction restarted concurrently")
	drain := flag.Duration("drain", 20*time.Minute, "drain period per batch")
	gap := flag.Duration("gap", time.Minute, "gap between batches")
	restart := flag.Duration("restart-overhead", 0, "non-drain restart cost (cache priming etc.)")
	strategy := flag.String("strategy", "zdr", "release strategy: zdr | hard")
	load := flag.Float64("load", 0.7, "baseline utilisation")
	tick := flag.Duration("tick", time.Minute, "simulation tick")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	day := flag.Bool("day", false, "simulate a 24h diurnal day with one release at -release-hour instead of a single release timeline")
	releaseHour := flag.Int("release-hour", 15, "hour of day the release starts (-day mode)")
	peakLoad := flag.Float64("peak-load", 0.85, "utilisation at the 16:00 peak (-day mode)")
	flag.Parse()

	var strat cluster.Strategy
	switch *strategy {
	case "zdr":
		strat = cluster.ZeroDowntime
	case "hard":
		strat = cluster.HardRestart
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q (want zdr or hard)\n", *strategy)
		os.Exit(2)
	}

	if *day {
		runDay(strat, *machines, *batch, *drain, *releaseHour, *peakLoad)
		return
	}

	res := cluster.RunRelease(cluster.Config{
		Machines:        *machines,
		BatchFraction:   *batch,
		DrainPeriod:     *drain,
		BatchGap:        *gap,
		RestartOverhead: *restart,
		Strategy:        strat,
		Load:            *load,
		Tick:            *tick,
		Seed:            *seed,
	})

	fmt.Println(res)
	fmt.Printf("\n%8s  %9s  %9s  %7s  %7s  %7s\n", "t", "capacity", "idle-cpu", "rps-gr", "rps-gnr", "cpu-gr")
	step := len(res.Timeline)/40 + 1
	for i, s := range res.Timeline {
		if i%step != 0 {
			continue
		}
		fmt.Printf("%8v  %8.1f%%  %8.1f%%  %7.2f  %7.2f  %7.2f\n",
			s.T.Round(time.Second), s.CapacityFraction*100, s.IdleCPUFraction*100,
			s.RPSRestartedGroup, s.RPSNonRestartedGroup, s.CPURestartedGroup)
	}
	fmt.Printf("\ncompletion=%v  minCapacity=%.1f%%  minIdleCPU=%.1f%%  disruptedConns=%d\n",
		res.CompletionTime, res.MinCapacityFraction*100, res.MinIdleCPUFraction*100, res.DisruptedConns)
}

// runDay prints the 24-hour diurnal timeline with one scheduled release.
func runDay(strat cluster.Strategy, machines int, batch float64, drain time.Duration, releaseHour int, peakLoad float64) {
	res := cluster.RunDay(cluster.DayConfig{
		Machines:      machines,
		PeakLoad:      peakLoad,
		ReleaseHour:   releaseHour,
		BatchFraction: batch,
		DrainPeriod:   drain,
		Strategy:      strat,
	})
	fmt.Printf("%5s  %6s  %9s  %6s  %9s  %s\n", "hour", "load", "capacity", "util", "release", "state")
	for _, h := range res.Hours {
		state := ""
		if h.Saturated {
			state = "SATURATED"
		}
		rel := ""
		if h.ReleaseActive {
			rel = "active"
		}
		fmt.Printf("%02d:00  %5.1f%%  %8.1f%%  %5.1f%%  %9s  %s\n",
			h.Hour, h.Load*100, h.Capacity*100, h.Utilisation*100, rel, state)
	}
	fmt.Printf("\nsaturated hours: %d   worst utilisation: %.1f%%\n",
		res.SaturatedHours, res.WorstUtilisation*100)
}
