// Root benchmark harness: one testing.B benchmark per paper table/figure
// (regenerating its rows via internal/experiments) plus the ablation
// benchmarks called out in DESIGN.md §4.
//
//	go test -bench=. -benchmem
//
// Each figure benchmark reports experiment-specific metrics (misrouted
// packets, error counts, completion minutes, ...) through b.ReportMetric,
// so the bench output doubles as the headline numbers table.
package zdr_test

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"zdr/internal/cluster"
	"zdr/internal/consistent"
	"zdr/internal/experiments"
	"zdr/internal/h2t"
	"zdr/internal/katran"
	"zdr/internal/netx"
	"zdr/internal/quicx"
	"zdr/internal/takeover"
	"zdr/internal/workload"
)

// runExperiment executes one figure generator b.N times, failing the
// bench if the experiment errors. Allocation counts are reported so the
// figure-level benches double as coarse allocation regressions alongside
// the per-package micro-benchmarks.
func runExperiment(b *testing.B, run func() (experiments.Table, error)) experiments.Table {
	b.Helper()
	b.ReportAllocs()
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

// cell parses a numeric table cell (strips %, x and unit suffixes).
func cell(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSpace(s)
	for _, suf := range []string{"%", "x", " min", " us"} {
		s = strings.TrimSuffix(s, suf)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func BenchmarkFig2aReleaseCadence(b *testing.B) {
	tab := runExperiment(b, experiments.Fig2aReleaseCadence)
	b.ReportMetric(cell(b, tab.Rows[0][2]), "l7lb-releases/wk-p50")
	b.ReportMetric(cell(b, tab.Rows[1][2]), "app-releases/wk-p50")
}

func BenchmarkFig2bReleaseCauses(b *testing.B) {
	tab := runExperiment(b, experiments.Fig2bReleaseCauses)
	b.ReportMetric(cell(b, tab.Rows[0][1]), "binary-share-%")
}

func BenchmarkFig2cCommitsPerRelease(b *testing.B) {
	tab := runExperiment(b, experiments.Fig2cCommitsPerRelease)
	b.ReportMetric(cell(b, tab.Rows[0][1]), "commits-p50")
}

func BenchmarkFig2dReuseportMisrouting(b *testing.B) {
	tab := runExperiment(b, experiments.Fig2dReuseportMisrouting)
	// Last row = 100k flows.
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cell(b, last[1])+cell(b, last[2]), "misrouted-pkts-100kflows")
}

func BenchmarkFig3aCapacityTimeline(b *testing.B) {
	tab := runExperiment(b, experiments.Fig3aCapacityTimeline)
	min := 101.0
	for _, row := range tab.Rows {
		if v := cell(b, row[1]); v < min {
			min = v
		}
	}
	b.ReportMetric(min, "min-capacity-%")
}

func BenchmarkFig3bReconnectCPU(b *testing.B) {
	tab := runExperiment(b, experiments.Fig3bReconnectCPU)
	b.ReportMetric(cell(b, tab.Rows[1][3]), "extra-cpu-%-at-10%-restarts")
}

func BenchmarkFig8IdleCPU(b *testing.B) {
	tab := runExperiment(b, experiments.Fig8IdleCPU)
	b.ReportMetric(cell(b, tab.Rows[1][1]), "hard20-min-idle-%")
	b.ReportMetric(cell(b, tab.Rows[3][1]), "zdr20-min-idle-%")
}

func BenchmarkFig9DCRTimeline(b *testing.B) {
	tab := runExperiment(b, experiments.Fig9DCRTimeline)
	var dcrMin, noMin float64 = 1e18, 1e18
	for i, row := range tab.Rows {
		if i < 4 || i > 7 {
			continue
		}
		if v := cell(b, row[1]); v < dcrMin {
			dcrMin = v
		}
		if v := cell(b, row[3]); v < noMin {
			noMin = v
		}
	}
	b.ReportMetric(dcrMin, "publishes-trough-DCR")
	b.ReportMetric(noMin, "publishes-trough-woutDCR")
}

func BenchmarkFig10UDPMisrouting(b *testing.B) {
	tab := runExperiment(b, experiments.Fig10UDPMisrouting)
	b.ReportMetric(cell(b, tab.Rows[0][2]), "misrouted-traditional")
	b.ReportMetric(cell(b, tab.Rows[1][2]), "misrouted-takeover")
}

func BenchmarkFig11PPRDisruption(b *testing.B) {
	tab := runExperiment(b, experiments.Fig11PPRDisruption)
	var worst float64
	for _, row := range tab.Rows {
		if v := cell(b, row[3]); v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "worst-day-%-without-PPR")
}

func BenchmarkFig12ProxyErrors(b *testing.B) {
	tab := runExperiment(b, experiments.Fig12ProxyErrors)
	var trad, zdr float64
	for _, row := range tab.Rows {
		trad += cell(b, row[1])
		zdr += cell(b, row[2])
	}
	b.ReportMetric(trad, "errors-traditional")
	b.ReportMetric(zdr, "errors-zdr")
}

func BenchmarkFig13ReleaseTimeline(b *testing.B) {
	tab := runExperiment(b, experiments.Fig13ReleaseTimeline)
	minRPS := 10.0
	for _, row := range tab.Rows {
		if v := cell(b, row[1]); v < minRPS {
			minRPS = v
		}
	}
	b.ReportMetric(minRPS, "min-GR-RPS-normalized")
}

func BenchmarkFig15RestartHours(b *testing.B) {
	tab := runExperiment(b, experiments.Fig15RestartHours)
	for _, row := range tab.Rows {
		if row[0] == "14:00" {
			b.ReportMetric(cell(b, row[1]), "proxygen-density-14h")
		}
	}
}

func BenchmarkFig16CompletionTime(b *testing.B) {
	tab := runExperiment(b, experiments.Fig16CompletionTime)
	b.ReportMetric(cell(b, tab.Rows[0][2]), "proxygen-p50-min")
	b.ReportMetric(cell(b, tab.Rows[1][2]), "appserver-p50-min")
}

func BenchmarkFig17TakeoverOverhead(b *testing.B) {
	tab := runExperiment(b, experiments.Fig17TakeoverOverhead)
	b.ReportMetric(cell(b, tab.Rows[0][1]), "handoff-p50-us")
}

func BenchmarkTblPPRRetries(b *testing.B) {
	tab := runExperiment(b, experiments.TblPPRRetries)
	b.ReportMetric(cell(b, tab.Rows[0][3]), "budget-exhaustions")
}

// --- Ablation benchmarks (DESIGN.md §4) ---

// BenchmarkAblationTakeoverVsReconnect compares the cost of handing a
// socket set to a new instance against the cost every client would
// otherwise pay: a full TCP reconnect per connection.
func BenchmarkAblationTakeoverVsReconnect(b *testing.B) {
	b.Run("takeover-3vips", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set, err := takeover.Listen(
				takeover.VIP{Name: "a", Network: takeover.NetworkTCP, Addr: "127.0.0.1:0"},
				takeover.VIP{Name: "b", Network: takeover.NetworkTCP, Addr: "127.0.0.1:0"},
				takeover.VIP{Name: "c", Network: takeover.NetworkUDP, Addr: "127.0.0.1:0"},
			)
			if err != nil {
				b.Fatal(err)
			}
			x, y, err := netx.SocketPair()
			if err != nil {
				b.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { _, err := takeover.Handoff(x, set, takeover.HandoffOptions{}); done <- err }()
			got, _, err := takeover.Receive(y, takeover.ReceiveOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if err := <-done; err != nil {
				b.Fatal(err)
			}
			got.Close()
			set.Close()
			x.Close()
			y.Close()
		}
	})
	b.Run("client-reconnect", func(b *testing.B) {
		b.ReportAllocs()
		ln, err := netx.ListenTCPReusePort("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := netDial(ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			c.Close()
		}
	})
}

// BenchmarkAblationConnIDRoutingVsRing sweeps the modeled release across
// flow counts, contrasting ring-flux misrouting with takeover routing.
func BenchmarkAblationConnIDRoutingVsRing(b *testing.B) {
	for _, flows := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("flows-%d", flows), func(b *testing.B) {
			b.ReportAllocs()
			var trad, zdr int64
			for i := 0; i < b.N; i++ {
				t, err := quicx.SimulateReuseportRelease(8, flows, 3)
				if err != nil {
					b.Fatal(err)
				}
				z, err := quicx.SimulateTakeoverRelease(8, flows, 3, 10)
				if err != nil {
					b.Fatal(err)
				}
				trad = t.FluxMisrouted + t.PurgeMisrouted
				zdr = z.FluxMisrouted + z.PurgeMisrouted
			}
			b.ReportMetric(float64(trad), "misrouted-ring")
			b.ReportMetric(float64(zdr), "misrouted-takeover")
		})
	}
}

// BenchmarkAblationLRUFlowCache measures collateral flow movement during
// a health flap with and without the §5.1 LRU connection-table cache.
// Flows owned by the flapped backend must move either way; the cache's
// value is pinning every *other* flow through the Maglev reshuffle.
func BenchmarkAblationLRUFlowCache(b *testing.B) {
	run := func(b *testing.B, cacheSize int) {
		b.ReportAllocs()
		collateral := 0
		for iter := 0; iter < b.N; iter++ {
			lb := katran.New("lb", katran.Config{FlowCacheSize: cacheSize}, nil)
			for i := 0; i < 8; i++ {
				lb.AddBackend(katran.Backend{Name: fmt.Sprintf("p%d", i), Addr: "x"}, true)
			}
			before := make([]string, 2000)
			for f := range before {
				bk, err := lb.Steer(uint64(f))
				if err != nil {
					b.Fatal(err)
				}
				before[f] = bk.Name
			}
			lb.SetHealth("p3", false) // mid-flap: table rebuilt without p3
			collateral = 0
			for f := range before {
				if before[f] == "p3" {
					continue // its flows must fail over; not collateral
				}
				bk, _ := lb.Steer(uint64(f))
				if bk.Name != before[f] {
					collateral++
				}
			}
			lb.Close()
		}
		b.ReportMetric(float64(collateral), "collateral-moves-of-2000")
	}
	b.Run("with-cache", func(b *testing.B) { run(b, 1<<16) })
	b.Run("without-cache", func(b *testing.B) { run(b, 0) })
}

// BenchmarkAblationGoawayDrain contrasts graceful GOAWAY drain with hard
// session close on the Edge↔Origin tunnel: in-flight streams survive the
// former and die with the latter.
func BenchmarkAblationGoawayDrain(b *testing.B) {
	run := func(b *testing.B, graceful bool) {
		b.ReportAllocs()
		survived := 0
		for i := 0; i < b.N; i++ {
			cc, sc := netPipe()
			client := h2t.NewSession(cc, true)
			server := h2t.NewSession(sc, false)
			acceptCh := make(chan *h2t.Stream, 1)
			go func() {
				st, err := server.Accept()
				if err == nil {
					acceptCh <- st
				}
			}()
			st, err := client.OpenStream(nil, false)
			if err != nil {
				b.Fatal(err)
			}
			srvSt := <-acceptCh
			if graceful {
				server.GoAway()
				srvSt.Write([]byte("bye"))
				srvSt.CloseWrite()
				st.CloseWrite()
				if body, err := readAll(st); err == nil && string(body) == "bye" {
					survived++
				}
			} else {
				server.Close()
				st.CloseWrite()
				if _, err := readAll(st); err == nil {
					survived++
				}
			}
			client.Close()
			server.Close()
		}
		b.ReportMetric(float64(survived)/float64(b.N), "in-flight-survival-rate")
	}
	b.Run("goaway", func(b *testing.B) { run(b, true) })
	b.Run("hard-close", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationBufferVsPPR quantifies the §4.3 option-(iii) tradeoff:
// memory the Origin would need to buffer every in-flight POST versus PPR's
// near-zero steady-state cost.
func BenchmarkAblationBufferVsPPR(b *testing.B) {
	b.ReportAllocs()
	var bufferBytes float64
	for i := 0; i < b.N; i++ {
		// 10k concurrent uploads at a mid-size Origin. Fresh seed per
		// iteration so the reported metric is independent of benchtime.
		rng := workload.NewRNG(99)
		var total int64
		for j := 0; j < 10_000; j++ {
			total += workload.PostSizeBytes(rng) / 2 // half-done on average
		}
		bufferBytes = float64(total)
	}
	b.ReportMetric(bufferBytes/(1<<30), "buffer-all-GiB")
	b.ReportMetric(0, "ppr-steady-state-GiB") // PPR buffers nothing at the proxy
}

// BenchmarkMaglevVsRing compares the two consistent-hash schemes.
func BenchmarkMaglevVsRing(b *testing.B) {
	members := make([]string, 64)
	for i := range members {
		members[i] = fmt.Sprintf("proxy-%02d", i)
	}
	b.Run("maglev", func(b *testing.B) {
		m := consistent.NewMaglev(2039, members...)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Pick("flow-12345")
		}
	})
	b.Run("ring", func(b *testing.B) {
		r := consistent.NewRing(100, members...)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Pick("flow-12345")
		}
	})
}

// BenchmarkClusterReleaseSweep benchmarks the simulator across fleet
// sizes (it must stay fast enough for parameter sweeps).
func BenchmarkClusterReleaseSweep(b *testing.B) {
	for _, machines := range []int{100, 1000} {
		b.Run(fmt.Sprintf("machines-%d", machines), func(b *testing.B) {
			cfg := cluster.Config{
				Machines:      machines,
				BatchFraction: 0.2,
				DrainPeriod:   20 * time.Minute,
				Strategy:      cluster.ZeroDowntime,
				Tick:          30 * time.Second,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cluster.RunRelease(cfg)
			}
		})
	}
}

// --- tiny local helpers (keep the bench file self-contained) ---

func netDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 2*time.Second)
}

func netPipe() (net.Conn, net.Conn) {
	return net.Pipe()
}

func readAll(st *h2t.Stream) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, st); err != nil {
		return buf.Bytes(), err
	}
	return buf.Bytes(), nil
}

func BenchmarkTblHeadlineBenefits(b *testing.B) {
	tab := runExperiment(b, experiments.TblHeadlineBenefits)
	b.ReportMetric(cell(b, strings.TrimSuffix(tab.Rows[0][2], " min")), "app-release-min")
	b.ReportMetric(cell(b, strings.TrimSuffix(tab.Rows[1][2], " min")), "l7lb-release-min")
}

func BenchmarkTblPeakHourRelease(b *testing.B) {
	tab := runExperiment(b, experiments.TblPeakHourRelease)
	// Row 1 = HardRestart at peak: dropped load fraction.
	b.ReportMetric(cell(b, tab.Rows[1][4]), "hard-peak-dropped-%")
	b.ReportMetric(cell(b, tab.Rows[3][4]), "zdr-peak-dropped-%")
}
