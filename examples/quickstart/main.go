// Quickstart: restart a live HTTP service with zero downtime.
//
// This example runs three generations of an Edge proxy on one listening
// socket. A client hammers the service the whole time; each restart hands
// the sockets to the next generation over a UNIX domain socket
// (SCM_RIGHTS), the old generation drains, and not a single request fails.
//
//	go run ./examples/quickstart
package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"zdr/internal/core"
	"zdr/internal/http1"
	"zdr/internal/proxy"
)

func main() {
	dir, err := os.MkdirTemp("", "zdr-quickstart")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)

	// A slot manages successive generations of one proxy instance; the
	// UNIX socket path is where Socket Takeover hand-offs happen.
	gen := 0
	slot := &core.ProxySlot{
		SlotName: "edge-1",
		Path:     filepath.Join(dir, "takeover.sock"),
		Build: func() *proxy.Proxy {
			gen++
			return proxy.New(proxy.Config{
				Name:        fmt.Sprintf("edge-1-gen%d", gen),
				Role:        proxy.RoleEdge,
				Origins:     []string{"127.0.0.1:1"}, // static content only
				DrainPeriod: 300 * time.Millisecond,
				StaticContent: map[string][]byte{
					"/": []byte("hello from a socket that never closes\n"),
				},
			}, nil)
		},
	}
	if err := slot.Start(); err != nil {
		fail(err)
	}
	defer slot.Close()
	addr := slot.Current().Addr(proxy.VIPWeb)
	fmt.Printf("generation 1 serving on %s\n", addr)

	// Client load: counts successes, aborts on ANY failure.
	var served, failed atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := get(addr); err != nil {
				fmt.Printf("REQUEST FAILED: %v\n", err)
				failed.Add(1)
				return
			}
			served.Add(1)
		}
	}()

	// Two zero-downtime restarts under load.
	for i := 0; i < 2; i++ {
		time.Sleep(300 * time.Millisecond)
		before := served.Load()
		if err := slot.Restart(); err != nil {
			fail(err)
		}
		fmt.Printf("restarted into generation %d (served %d requests so far, zero failures)\n",
			slot.Generation(), before)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	<-done

	fmt.Printf("\ntotal: %d requests served across 3 generations, %d failed\n", served.Load(), failed.Load())
	if failed.Load() > 0 {
		os.Exit(1)
	}
	fmt.Println("zero downtime ✓")
}

func get(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := http1.WriteRequest(conn, http1.NewRequest("GET", "/", nil, 0)); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return err
	}
	if _, err := http1.ReadFullBody(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != 200 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
