// fleetrelease: simulate a global rolling release and compare the
// traditional HardRestart against Zero Downtime Release — the cluster-
// scale A/B behind Figs. 3a, 8 and 13.
//
//	go run ./examples/fleetrelease
package main

import (
	"fmt"
	"time"

	"zdr/internal/cluster"
)

func main() {
	base := cluster.Config{
		Machines:      200,
		BatchFraction: 0.20,
		DrainPeriod:   20 * time.Minute,
		BatchGap:      2 * time.Minute,
		Tick:          time.Minute,
		Seed:          2020,
	}

	hard := base
	hard.Strategy = cluster.HardRestart
	zdr := base
	zdr.Strategy = cluster.ZeroDowntime

	hr := cluster.RunRelease(hard)
	zr := cluster.RunRelease(zdr)

	fmt.Println("rolling release of a 200-machine Edge cluster, 20% batches, 20-minute drains")
	fmt.Println()
	fmt.Printf("%-28s %16s %16s\n", "", "HardRestart", "ZeroDowntime")
	row := func(label, a, b string) { fmt.Printf("%-28s %16s %16s\n", label, a, b) }
	row("completion time", hr.CompletionTime.String(), zr.CompletionTime.String())
	row("min serving capacity", fmt.Sprintf("%.1f%%", hr.MinCapacityFraction*100), fmt.Sprintf("%.1f%%", zr.MinCapacityFraction*100))
	row("min idle CPU (vs baseline)", fmt.Sprintf("%.1f%%", hr.MinIdleCPUFraction*100), fmt.Sprintf("%.1f%%", zr.MinIdleCPUFraction*100))
	row("persistent conns disrupted", fmt.Sprintf("%d", hr.DisruptedConns), fmt.Sprintf("%d", zr.DisruptedConns))

	fmt.Println("\ncapacity timeline (every 10 minutes):")
	fmt.Printf("%8s %14s %14s\n", "t", "hard", "zdr")
	for i := 0; i < len(hr.Timeline) && i < len(zr.Timeline); i += 10 {
		fmt.Printf("%8v %13.1f%% %13.1f%%\n",
			hr.Timeline[i].T.Round(time.Minute),
			hr.Timeline[i].CapacityFraction*100,
			zr.Timeline[i].CapacityFraction*100)
	}

	fmt.Println("\nthe ZDR column is the paper's claim: the fleet restarts with the")
	fmt.Println("cluster at full capacity and zero disrupted connections.")
}
