// udpflows: QUIC-style UDP flows survive a Socket Takeover.
//
// UDP is the hard case for zero-downtime restarts (§4.1): the kernel has
// no listening/accepted separation, so after the hand-off every datagram —
// including those of flows whose state lives in the OLD process — arrives
// at the NEW process. This example shows the paper's fix working end to
// end on one UDP socket:
//
//  1. a client opens a flow against Edge generation 1;
//
//  2. generation 2 takes the sockets over (the manifest carries gen 1's
//     pre-configured host-local forward address);
//
//  3. the old flow keeps being answered by generation 1 (user-space
//     routing by connection ID), while a brand-new flow lands on
//     generation 2 — zero mis-routed packets.
//
//     go run ./examples/udpflows
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"zdr/internal/proxy"
	"zdr/internal/quicx"
)

func main() {
	dir, err := os.MkdirTemp("", "zdr-udpflows")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "takeover.sock")

	build := func(name string) *proxy.Proxy {
		return proxy.New(proxy.Config{
			Name:          name,
			Role:          proxy.RoleEdge,
			Origins:       []string{"127.0.0.1:1"},
			EnableQUIC:    true,
			DrainPeriod:   2 * time.Second,
			StaticContent: map[string][]byte{"/chunk": []byte("media-bytes")},
		}, nil)
	}

	gen1 := build("gen1")
	if err := gen1.Listen(); err != nil {
		fail(err)
	}
	defer gen1.Close()
	if err := gen1.ServeTakeover(path); err != nil {
		fail(err)
	}
	addr := gen1.Addr(proxy.VIPQUIC)
	fmt.Printf("generation 1 serving QUIC-style UDP on %s\n", addr)

	// A client opens a flow: its state (conn ID 4242) lives in gen 1.
	flow, err := quicx.Dial(addr, 4242)
	if err != nil {
		fail(err)
	}
	defer flow.Close()
	reply, err := flow.Open([]byte("/chunk"), 2*time.Second)
	if err != nil {
		fail(err)
	}
	fmt.Printf("flow 4242 opened, served by %q\n", who(reply))

	// The restart: generation 2 receives the UDP socket FD. The socket
	// ring never changes — no SO_REUSEPORT flux, no mis-routing.
	gen2 := build("gen2")
	if _, err := gen2.TakeoverFrom(path); err != nil {
		fail(err)
	}
	defer gen2.Close()
	fmt.Println("generation 2 took the socket over; generation 1 draining")
	time.Sleep(100 * time.Millisecond)

	// The old flow still reaches generation 1 via user-space routing.
	for i := 0; i < 3; i++ {
		reply, err := flow.Send([]byte("/chunk"), 2*time.Second)
		if err != nil {
			fail(fmt.Errorf("old flow packet %d lost: %w", i, err))
		}
		fmt.Printf("flow 4242 packet %d → answered by %q (forwarded in user space)\n", i+1, who(reply))
		if who(reply) != "gen1" {
			fail(fmt.Errorf("old flow answered by the wrong instance"))
		}
	}

	// A new flow lands on generation 2.
	flow2, err := quicx.Dial(addr, 777)
	if err != nil {
		fail(err)
	}
	defer flow2.Close()
	reply, err = flow2.Open([]byte("/chunk"), 2*time.Second)
	if err != nil {
		fail(err)
	}
	fmt.Printf("new flow 777 → answered by %q\n", who(reply))
	if who(reply) != "gen2" {
		fail(fmt.Errorf("new flow answered by the wrong instance"))
	}

	mis := gen1.Metrics().CounterValue("quicx.misrouted") + gen2.Metrics().CounterValue("quicx.misrouted")
	fwd := gen2.Metrics().CounterValue("quicx.forwarded")
	fmt.Printf("\nmis-routed packets: %d, user-space forwarded: %d\n", mis, fwd)
	if mis != 0 {
		fail(fmt.Errorf("packets were mis-routed"))
	}
	fmt.Println("both generations served their own flows on one socket ✓")
}

// who extracts the instance name prefix from a reply ("name|content").
func who(reply []byte) string {
	s := string(reply)
	if i := strings.IndexByte(s, '|'); i >= 0 {
		return s[:i]
	}
	return s
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
