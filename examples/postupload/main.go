// postupload: Partial Post Replay saves a long upload from an app-server
// restart.
//
// A client uploads a large POST through Edge → Origin. Mid-upload, the app
// server receiving it restarts. Instead of failing the request with a 500,
// the server hands the partially received body back to the Origin proxy
// with status 379 ("PartialPOST"); the proxy rebuilds the request and
// replays it — returned prefix plus the still-streaming remainder — to a
// healthy server. The client sees one clean 200 with the complete body
// echoed back.
//
//	go run ./examples/postupload
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"time"

	"zdr/internal/appserver"
	"zdr/internal/http1"
	"zdr/internal/proxy"
)

func main() {
	// Two app servers: the restart victim and the replay target.
	var apps []*appserver.Server
	var appAddrs []string
	for i := 0; i < 2; i++ {
		as := appserver.New(appserver.Config{
			Name:         fmt.Sprintf("as-%d", i),
			Mode:         appserver.ModePPR,
			DrainPeriod:  100 * time.Millisecond,
			GraceWindow:  300 * time.Millisecond,
			GraceSilence: 60 * time.Millisecond,
		}, nil)
		addr, err := as.Listen("127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		defer as.Close()
		apps = append(apps, as)
		appAddrs = append(appAddrs, addr)
	}

	origin := proxy.New(proxy.Config{
		Name:       "origin-0",
		Role:       proxy.RoleOrigin,
		AppServers: appAddrs,
	}, nil)
	if err := origin.Listen(); err != nil {
		fail(err)
	}
	defer origin.Close()

	edge := proxy.New(proxy.Config{
		Name:    "edge-0",
		Role:    proxy.RoleEdge,
		Origins: []string{origin.Addr(proxy.VIPTunnel)},
	}, nil)
	if err := edge.Listen(); err != nil {
		fail(err)
	}
	defer edge.Close()

	// The upload: 6000 bytes, paced at 100 bytes / 15 ms (a slow uplink).
	const total, piece = 6000, 100
	body := bytes.Repeat([]byte("d"), total)
	conn, err := net.Dial("tcp", edge.Addr(proxy.VIPWeb))
	if err != nil {
		fail(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /upload HTTP/1.1\r\nContent-Length: %d\r\n\r\n", total)
	fmt.Printf("uploading %d bytes ...\n", total)

	restarted := false
	for off := 0; off < total; off += piece {
		if !restarted && off >= total/4 {
			for i, as := range apps {
				if as.Metrics().CounterValue("appserver.requests") > 0 {
					fmt.Printf("app server as-%d restarting at %d/%d bytes uploaded!\n", i, off, total)
					go as.Shutdown()
					restarted = true
					break
				}
			}
		}
		if _, err := conn.Write(body[off : off+piece]); err != nil {
			fail(fmt.Errorf("upload interrupted at %d: %w", off, err))
		}
		time.Sleep(15 * time.Millisecond)
	}

	conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	resp, err := http1.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		fail(err)
	}
	echoed, err := http1.ReadFullBody(resp.Body)
	if err != nil {
		fail(err)
	}

	fmt.Printf("\nclient saw: %d %s (served by %s)\n", resp.StatusCode, resp.StatusMessage, resp.Header.Get("X-Served-By"))
	fmt.Printf("echoed body: %d/%d bytes intact\n", len(echoed), total)
	fmt.Printf("origin: 379 replays = %d, budget exhaustions = %d\n",
		origin.Metrics().CounterValue("origin.http.ppr_replays"),
		origin.Metrics().CounterValue("origin.http.ppr_exhausted"))
	if resp.StatusCode != 200 || !bytes.Equal(echoed, body) {
		fail(fmt.Errorf("upload was disrupted"))
	}
	fmt.Println("\nupload survived the restart without the client noticing ✓")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
