// mqttlive: Downstream Connection Reuse keeps a push-notification
// connection alive across an Origin proxy restart.
//
// Topology (all real sockets on localhost):
//
//	MQTT client ── Edge Proxygen ══ tunnel ══ Origin Proxygen ── Broker
//
// The client connects and subscribes to its notification topic. Then the
// Origin relaying it restarts. Without DCR the client's connection would
// drop and it would have to re-handshake; with DCR the Edge re_connects
// through the second Origin, the broker splices the session, and the
// client keeps receiving notifications without noticing anything.
//
//	go run ./examples/mqttlive
package main

import (
	"fmt"
	"net"
	"os"
	"time"

	"zdr/internal/mqtt"
	"zdr/internal/proxy"
)

func main() {
	// Broker.
	broker := mqtt.NewBroker("broker-1", nil)
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	defer bln.Close()
	go broker.Serve(bln)
	defer broker.Close()

	// Two Origins (the restart victim and the DCR fail-over target).
	var origins []*proxy.Proxy
	var originAddrs []string
	for i := 0; i < 2; i++ {
		o := proxy.New(proxy.Config{
			Name:        fmt.Sprintf("origin-%d", i),
			Role:        proxy.RoleOrigin,
			Brokers:     []string{bln.Addr().String()},
			DrainPeriod: 2 * time.Second,
		}, nil)
		if err := o.Listen(); err != nil {
			fail(err)
		}
		defer o.Close()
		origins = append(origins, o)
		originAddrs = append(originAddrs, o.Addr(proxy.VIPTunnel))
	}

	// Edge.
	edge := proxy.New(proxy.Config{
		Name:        "edge-0",
		Role:        proxy.RoleEdge,
		Origins:     originAddrs,
		DrainPeriod: 2 * time.Second,
	}, nil)
	if err := edge.Listen(); err != nil {
		fail(err)
	}
	defer edge.Close()

	// End-user MQTT client, terminated at the Edge.
	conn, err := net.Dial("tcp", edge.Addr(proxy.VIPMQTT))
	if err != nil {
		fail(err)
	}
	client := mqtt.NewClient(conn, "user-1001", true)
	if _, err := client.Connect(0, 5*time.Second); err != nil {
		fail(err)
	}
	defer client.Disconnect()
	if err := client.Subscribe(5*time.Second, "notif/user-1001"); err != nil {
		fail(err)
	}
	fmt.Println("client connected through edge and subscribed to notif/user-1001")

	notify := func(msg string) error {
		if n := broker.Publish("notif/user-1001", []byte(msg)); n != 1 {
			return fmt.Errorf("delivered to %d sessions, want 1", n)
		}
		select {
		case m := <-client.Messages():
			fmt.Printf("client received: %q\n", m.Payload)
			return nil
		case <-time.After(5 * time.Second):
			return fmt.Errorf("notification %q lost", msg)
		}
	}
	if err := notify("before restart"); err != nil {
		fail(err)
	}

	// Restart the Origin carrying the relay.
	serving := -1
	for i, o := range origins {
		if o.Metrics().GaugeValue("origin.mqtt.active") > 0 {
			serving = i
		}
	}
	fmt.Printf("restarting origin-%d (it sends GOAWAY + reconnect_solicitation) ...\n", serving)
	origins[serving].StartDraining()

	// Wait for the splice.
	deadline := time.Now().Add(5 * time.Second)
	for edge.Metrics().CounterValue("edge.mqtt.reconnect.ack") == 0 {
		if time.Now().After(deadline) {
			fail(fmt.Errorf("DCR splice never completed"))
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("edge re_connected through the other origin; broker acknowledged (connect_ack)")

	select {
	case <-client.Done():
		fail(fmt.Errorf("client connection dropped — DCR failed"))
	default:
	}
	if err := notify("after restart"); err != nil {
		fail(err)
	}
	if err := client.Ping(5 * time.Second); err != nil {
		fail(err)
	}
	fmt.Println("\nclient never disconnected across the origin restart ✓")
	fmt.Printf("broker: resumed sessions = %d, refused = %d\n",
		broker.Metrics().CounterValue("mqtt.connect.resumed"),
		broker.Metrics().CounterValue("mqtt.connect.refused"))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
