module zdr

go 1.22
